#!/usr/bin/env python3
"""Validate xmlsort's telemetry export against the documented schema.

Runs `xmlsort --stats-json --trace-out` on a small fixture and checks that
the emitted JSON carries everything docs/OBSERVABILITY.md promises to
consumers: per-phase wall time and per-category I/O counts on every span,
the memory peak, the run count, and the run-size histogram. Wired into
ctest as `telemetry_schema_check` so a schema regression fails the suite.

With --service-stats, validates a `nexsortd-stats-v1` document instead
(the `stats` member of a `nexsortctl stats` response, see docs/SERVICE.md):
the shared-env description, the per-session attribution array, and the
queue / admission / tenant / job blocks the daemon reports.

Usage:
  check_telemetry_schema.py --xmlsort BIN --fixture FILE [--keep DIR]
  check_telemetry_schema.py --service-stats FILE
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

IO_CATEGORIES = [
    "input", "output", "data-stack", "path-stack", "output-stack",
    "run-write", "run-read", "sort-temp", "other",
]

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)


def check_io_object(io, where, sparse_categories=False):
    """Validate one io object. `stats.io` carries all nine categories with
    zeros included; span io objects are sparse (only non-zero deltas)."""
    for key in ("reads", "writes", "total", "modeled_seconds", "categories"):
        check(key in io, f"{where}: missing io key '{key}'")
    categories = io.get("categories", {})
    if not sparse_categories:
        for name in IO_CATEGORIES:
            check(name in categories,
                  f"{where}: missing io category '{name}'")
    for name, entry in categories.items():
        check(name in IO_CATEGORIES,
              f"{where}: unknown io category '{name}'")
        check("reads" in entry and "writes" in entry,
              f"{where}: category '{name}' missing reads/writes")


def check_telemetry(telemetry):
    check(telemetry.get("schema") == "nexsort-telemetry-v1",
          f"telemetry schema is {telemetry.get('schema')!r}, "
          "expected 'nexsort-telemetry-v1'")
    check(isinstance(telemetry.get("elapsed_seconds"), (int, float)),
          "telemetry: missing elapsed_seconds")

    spans = telemetry.get("spans", [])
    check(len(spans) > 0, "telemetry: no spans recorded")
    names = [s.get("name") for s in spans]
    for expected in ("nexsort", "sorting_phase", "output_phase"):
        check(expected in names, f"telemetry: missing span '{expected}'")
    for span in spans:
        where = f"span '{span.get('name')}'"
        check(isinstance(span.get("wall_seconds"), (int, float)),
              f"{where}: missing wall_seconds")
        check(span.get("closed") is True, f"{where}: not closed")
        check("io" in span, f"{where}: missing io")
        if "io" in span:
            check_io_object(span["io"], where, sparse_categories=True)
        check("memory" in span, f"{where}: missing memory")
        for key in ("budget_used_open", "budget_used_close", "budget_peak"):
            check(key in span.get("memory", {}), f"{where}: missing {key}")

    run_events = telemetry.get("run_events", {})
    check("count" in run_events, "telemetry: run_events missing count")
    by_kind = run_events.get("by_kind", {})
    for kind in ("created", "fragment", "read-back", "merged", "freed"):
        check(kind in by_kind, f"telemetry: run_events missing kind '{kind}'")

    metrics = telemetry.get("metrics", {})
    histograms = metrics.get("histograms", {})
    check("run_size_bytes" in histograms,
          "telemetry: missing run_size_bytes histogram")
    for name, hist in histograms.items():
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90",
                    "p95", "p99", "buckets"):
            check(key in hist, f"histogram '{name}': missing '{key}'")
        if all(isinstance(hist.get(k), (int, float))
               for k in ("p50", "p90", "p95", "p99")):
            check(hist["p50"] <= hist["p90"] <= hist["p95"] <= hist["p99"],
                  f"histogram '{name}': percentiles not non-decreasing")
        for bucket in hist.get("buckets", []):
            check(isinstance(bucket, list) and len(bucket) == 2,
                  f"histogram '{name}': bucket is not [upper_bound, count]")


CACHE_COUNTER_KEYS = ("hits", "misses", "evictions", "writebacks",
                      "writeback_failures", "prefetches")


def check_hit_rate_convention(counters, where):
    """`hit_rate` is defined only over observed accesses: present iff
    hits + misses > 0, and never 0/NaN standing in for 'no data'."""
    accesses = counters.get("hits", 0) + counters.get("misses", 0)
    if accesses > 0:
        check(isinstance(counters.get("hit_rate"), (int, float)),
              f"{where}: hit_rate missing despite {accesses} accesses")
    else:
        check("hit_rate" not in counters,
              f"{where}: hit_rate present with zero accesses "
              "(must be absent, not 0/NaN)")


def check_cache(cache, cache_enabled):
    """Validate the stats.cache block for a run with caching on or off."""
    for key in ("enabled", "frames", "readahead", "counters"):
        check(key in cache, f"stats.cache: missing key '{key}'")
    check(cache.get("enabled") is cache_enabled,
          f"stats.cache: enabled is {cache.get('enabled')!r}, "
          f"expected {cache_enabled}")
    counters = cache.get("counters", {})
    for key in CACHE_COUNTER_KEYS:
        check(key in counters, f"stats.cache.counters: missing '{key}'")
    check_hit_rate_convention(counters, "stats.cache.counters")
    if cache_enabled:
        check(cache.get("frames", 0) > 0,
              "stats.cache: enabled but frames == 0")
        accesses = counters.get("hits", 0) + counters.get("misses", 0)
        check(accesses > 0,
              "stats.cache: enabled but the pool saw no accesses")
    else:
        for key in ("hits", "misses", "evictions", "prefetches"):
            check(counters.get(key) == 0,
                  f"stats.cache.counters: '{key}' non-zero with cache off")


def check_cache_metrics(telemetry):
    """With caching on, the pool's counters must reach the metrics export."""
    metrics = telemetry.get("metrics", {})
    counters = metrics.get("counters", {})
    for name in ("cache_hits", "cache_misses"):
        check(name in counters, f"telemetry: missing counter '{name}'")
    gauges = metrics.get("gauges", {})
    check("cache_hit_rate_pct" in gauges,
          "telemetry: missing gauge 'cache_hit_rate_pct'")


def check_no_hit_rate_gauge(telemetry):
    """Zero cache accesses: the hit-rate gauge must not exist at all."""
    gauges = telemetry.get("metrics", {}).get("gauges", {})
    check("cache_hit_rate_pct" not in gauges,
          "telemetry: gauge 'cache_hit_rate_pct' present with cache off "
          "(must be absent when there were zero accesses)")


PARALLEL_COUNTER_KEYS = ("async_spills", "sync_spills",
                         "double_buffer_declined", "parallel_sorts",
                         "sort_partitions", "prefetch_issued",
                         "prefetch_declined", "spill_wait_seconds",
                         "spill_busy_seconds")


def check_parallel(parallel, parallel_enabled):
    """Validate the stats.parallel block in serial and parallel runs."""
    for key in ("enabled", "threads", "prefetch_depth", "counters"):
        check(key in parallel, f"stats.parallel: missing key '{key}'")
    check(parallel.get("enabled") is parallel_enabled,
          f"stats.parallel: enabled is {parallel.get('enabled')!r}, "
          f"expected {parallel_enabled}")
    counters = parallel.get("counters", {})
    for key in PARALLEL_COUNTER_KEYS:
        check(key in counters, f"stats.parallel.counters: missing '{key}'")
    if parallel_enabled:
        check(parallel.get("threads", 0) > 0
              or parallel.get("prefetch_depth", 0) > 0,
              "stats.parallel: enabled without threads or prefetch_depth")
    else:
        for key in ("async_spills", "parallel_sorts", "prefetch_issued"):
            check(counters.get(key) == 0,
                  f"stats.parallel.counters: '{key}' non-zero while serial")


def check_parallel_metrics(telemetry):
    """With the pipeline on, parallel_* counters must reach the export."""
    counters = telemetry.get("metrics", {}).get("counters", {})
    for name in ("parallel_async_spills", "parallel_sync_spills",
                 "parallel_prefetch_issued"):
        check(name in counters, f"telemetry: missing counter '{name}'")


ENV_KEYS = ("block_size", "memory_blocks", "device", "layers",
            "cache_frames", "readahead", "threads", "prefetch_depth",
            "sort_memory_blocks", "sample_interval_ms")

KNOWN_LAYERS = ("throttle", "fault")


def check_env(env, stats):
    """Validate the stats.env block: the composed SortEnv configuration.

    Must agree with the sibling top-level fields (block_size,
    memory_blocks) and with the cache/parallel blocks derived from the
    same SortEnvOptions.
    """
    for key in ENV_KEYS:
        check(key in env, f"stats.env: missing key '{key}'")
    check(env.get("block_size") == stats.get("block_size"),
          "stats.env.block_size disagrees with stats.block_size")
    check(env.get("memory_blocks") == stats.get("memory_blocks"),
          "stats.env.memory_blocks disagrees with stats.memory_blocks")
    check(env.get("device") in ("memory", "file"),
          f"stats.env.device is {env.get('device')!r}, "
          "expected 'memory' or 'file'")
    layers = env.get("layers", None)
    check(isinstance(layers, list), "stats.env.layers is not a list")
    for layer in layers or []:
        check(layer in KNOWN_LAYERS,
              f"stats.env.layers: unknown layer {layer!r}")
    cache = stats.get("cache", {})
    check(env.get("cache_frames") == cache.get("frames"),
          "stats.env.cache_frames disagrees with stats.cache.frames")
    check(env.get("readahead") == cache.get("readahead"),
          "stats.env.readahead disagrees with stats.cache.readahead")
    parallel = stats.get("parallel", {})
    check(env.get("threads") == parallel.get("threads"),
          "stats.env.threads disagrees with stats.parallel.threads")
    check(env.get("prefetch_depth") == parallel.get("prefetch_depth"),
          "stats.env.prefetch_depth disagrees with "
          "stats.parallel.prefetch_depth")


SESSION_KEYS = ("id", "active", "start_seconds", "wall_seconds", "io",
                "runs_created", "spilled_bytes", "budget_peak_blocks")


def check_sessions(sessions, allow_idle=False):
    """Validate the stats.sessions array (per-session attribution).

    xmlsort runs exactly one job, so its export must carry a session that
    did I/O; a daemon snapshot (`allow_idle`) may legitimately be empty or
    hold sessions that have not touched the device yet.
    """
    check(isinstance(sessions, list), "stats.sessions is not a list")
    if not isinstance(sessions, list):
        return
    if not allow_idle:
        check(len(sessions) >= 1,
              "stats.sessions: empty (xmlsort runs one job)")
    ids = [s.get("id") for s in sessions]
    check(len(ids) == len(set(ids)), "stats.sessions: duplicate session ids")
    for session in sessions:
        where = f"stats.sessions[id={session.get('id')!r}]"
        for key in SESSION_KEYS:
            check(key in session, f"{where}: missing key '{key}'")
        check(isinstance(session.get("active"), bool),
              f"{where}: active is not a bool")
        for key in ("start_seconds", "wall_seconds"):
            value = session.get(key)
            check(isinstance(value, (int, float)) and value >= 0,
                  f"{where}: {key} is not a non-negative number")
        if "io" in session:
            check_io_object(session["io"], f"{where}.io")
            if not allow_idle:
                check(session["io"].get("total", 0) > 0,
                      f"{where}: session recorded no I/O")


RUN_FORMATION_POLICIES = ("quicksort_chunks", "replacement_selection")

MERGE_POLICIES = ("greedy", "planned")

MERGE_PLAN_KEYS = ("policy", "plans", "steps", "input_runs", "fanin_min",
                   "fanin_max", "fanin_total", "predicted_bytes",
                   "actual_bytes")


def check_merge_plan(plan, where, runs_formed=None, expect_merge_policy=None):
    """Validate a merge_plan block (docs/MERGE_PLANNING.md): the aggregated
    merge-schedule accounting of every external sort that ran merge steps.

    Cross-field invariant: every run that enters a merge is consumed by
    exactly one step, and every step's output except each plan's root is
    consumed downstream, so fanin_total == input_runs + steps - plans.
    """
    for key in MERGE_PLAN_KEYS:
        check(key in plan, f"{where}: missing key '{key}'")
    check(plan.get("policy") in MERGE_POLICIES,
          f"{where}: unknown policy {plan.get('policy')!r}")
    if expect_merge_policy is not None:
        check(plan.get("policy") == expect_merge_policy,
              f"{where}: policy is {plan.get('policy')!r}, "
              f"expected {expect_merge_policy!r}")
    for key in MERGE_PLAN_KEYS[1:]:
        check(isinstance(plan.get(key), int),
              f"{where}: '{key}' is not an integer")
    if not all(isinstance(plan.get(k), int) for k in MERGE_PLAN_KEYS[1:]):
        return
    check(plan["plans"] > 0, f"{where}: present but records no plans")
    check(plan["steps"] >= plan["plans"],
          f"{where}: fewer steps than plans")
    check(plan["input_runs"] >= 2 * plan["plans"],
          f"{where}: a plan must merge at least two runs")
    check(plan["fanin_min"] >= 1 and plan["fanin_max"] >= plan["fanin_min"],
          f"{where}: fan-in bounds are inconsistent")
    if plan.get("policy") == "planned":
        # The planner never emits copy steps; only the greedy baseline
        # carries fan-in-1 trailing groups.
        check(plan["fanin_min"] >= 2,
              f"{where}: planned policy emitted a fan-in < 2 step")
    check(plan["fanin_total"] ==
          plan["input_runs"] + plan["steps"] - plan["plans"],
          f"{where}: fanin_total {plan['fanin_total']} != input_runs "
          f"{plan['input_runs']} + steps {plan['steps']} - plans "
          f"{plan['plans']} (every input consumed exactly once)")
    check(plan["actual_bytes"] > 0,
          f"{where}: merge steps ran but actual_bytes == 0")
    if runs_formed is not None:
        check(plan["input_runs"] <= runs_formed,
              f"{where}: input_runs exceeds runs_formed {runs_formed}")


def check_sort_block(sort, expect_policy=None, expect_streaming=None,
                     expect_merge_policy=None):
    """Validate the stats.sort block: run-formation counters plus the
    streaming output measurements (docs/RUN_FORMATION.md)."""
    for key in ("run_formation", "runs_formed", "avg_run_blocks",
                "max_run_blocks", "merge_passes", "merge_policy",
                "dfs_placement", "streaming",
                "time_to_first_byte_ms", "wall_ms"):
        check(key in sort, f"stats.sort: missing key '{key}'")
    check(sort.get("merge_policy") in MERGE_POLICIES,
          f"stats.sort: unknown merge_policy {sort.get('merge_policy')!r}")
    if expect_merge_policy is not None:
        check(sort.get("merge_policy") == expect_merge_policy,
              f"stats.sort: merge_policy is {sort.get('merge_policy')!r}, "
              f"expected {expect_merge_policy!r}")
    check(isinstance(sort.get("dfs_placement"), bool),
          "stats.sort: dfs_placement is not a bool")
    # merge_plan accounting exists exactly when merge steps actually ran.
    if sort.get("merge_passes", 0) > 0:
        check("merge_plan" in sort,
              "stats.sort: merge passes ran but merge_plan is missing")
        if "merge_plan" in sort:
            check_merge_plan(sort["merge_plan"], "stats.sort.merge_plan",
                             runs_formed=sort.get("runs_formed"),
                             expect_merge_policy=expect_merge_policy)
    else:
        check("merge_plan" not in sort,
              "stats.sort: merge_plan present though no merge pass ran")
    check(sort.get("run_formation") in RUN_FORMATION_POLICIES,
          f"stats.sort: unknown run_formation "
          f"{sort.get('run_formation')!r}")
    if expect_policy is not None:
        check(sort.get("run_formation") == expect_policy,
              f"stats.sort: run_formation is {sort.get('run_formation')!r}, "
              f"expected {expect_policy!r}")
    for key in ("runs_formed", "max_run_blocks", "merge_passes"):
        check(isinstance(sort.get(key), int),
              f"stats.sort: '{key}' is not an integer")
    check(isinstance(sort.get("avg_run_blocks"), (int, float)),
          "stats.sort: avg_run_blocks is not numeric")
    if isinstance(sort.get("runs_formed"), int) and sort["runs_formed"] > 0:
        check(sort.get("avg_run_blocks", 0) > 0,
              "stats.sort: runs formed but avg_run_blocks == 0")
        check(sort.get("max_run_blocks", 0) >= sort.get("avg_run_blocks", 0),
              "stats.sort: max_run_blocks below avg_run_blocks")
        if sort["runs_formed"] == 1:
            check(sort.get("merge_passes") == 0,
                  "stats.sort: single run but merge_passes != 0 "
                  "(the merge phase must be skipped)")
    check(isinstance(sort.get("streaming"), bool),
          "stats.sort: streaming is not a bool")
    if expect_streaming is not None:
        check(sort.get("streaming") is expect_streaming,
              f"stats.sort: streaming is {sort.get('streaming')!r}, "
              f"expected {expect_streaming}")
    for key in ("time_to_first_byte_ms", "wall_ms"):
        value = sort.get(key)
        check(isinstance(value, (int, float)) and value >= 0,
              f"stats.sort: {key} is not a non-negative number")
    if sort.get("streaming") is True:
        ttfb = sort.get("time_to_first_byte_ms", -1)
        wall = sort.get("wall_ms", 0)
        check(isinstance(ttfb, (int, float)) and ttfb > 0,
              "stats.sort: streaming run recorded no time_to_first_byte_ms")
        if isinstance(ttfb, (int, float)) and isinstance(wall, (int, float)):
            check(ttfb <= wall,
                  "stats.sort: time_to_first_byte_ms exceeds wall_ms")


def check_stats(stats, cache_enabled=False, parallel_enabled=False,
                expect_policy=None, expect_streaming=None,
                expect_merge_policy=None):
    check(stats.get("schema") == "nexsort-stats-v1",
          f"stats schema is {stats.get('schema')!r}, "
          "expected 'nexsort-stats-v1'")
    for key in ("tool", "input", "block_size", "memory_blocks",
                "memory_peak_blocks", "run_count", "env", "io", "cache",
                "parallel", "sessions", "sort", "nexsort", "telemetry"):
        check(key in stats, f"stats: missing top-level key '{key}'")
    if "sort" in stats:
        check_sort_block(stats["sort"], expect_policy=expect_policy,
                         expect_streaming=expect_streaming,
                         expect_merge_policy=expect_merge_policy)
    nexsort = stats.get("nexsort", {})
    sorts = nexsort.get("sorts", {}) if isinstance(nexsort, dict) else {}
    for key in ("runs_formed", "avg_run_blocks", "max_run_blocks",
                "merge_passes", "merge_plan"):
        check(key in sorts, f"stats.nexsort.sorts: missing key '{key}'")
    # The nexsort block's merge_plan mirrors stats.sort.merge_plan but is
    # unconditional (all-zero when no external sort merged).
    if isinstance(sorts.get("merge_plan"), dict) and \
            sorts["merge_plan"].get("plans", 0) > 0:
        check_merge_plan(sorts["merge_plan"], "stats.nexsort.sorts.merge_plan",
                         expect_merge_policy=expect_merge_policy)
    if "env" in stats:
        check_env(stats["env"], stats)
    check(isinstance(stats.get("memory_peak_blocks"), int),
          "stats: memory_peak_blocks is not an integer")
    check(isinstance(stats.get("run_count"), int),
          "stats: run_count is not an integer")
    if "io" in stats:
        check_io_object(stats["io"], "stats.io")
    if "cache" in stats:
        check_cache(stats["cache"], cache_enabled)
    if "parallel" in stats:
        check_parallel(stats["parallel"], parallel_enabled)
    if "sessions" in stats:
        check_sessions(stats["sessions"])
    if "telemetry" in stats:
        check_telemetry(stats["telemetry"])
        if cache_enabled:
            check_cache_metrics(stats["telemetry"])
        else:
            check_no_hit_rate_gauge(stats["telemetry"])
        if parallel_enabled:
            check_parallel_metrics(stats["telemetry"])


JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

JOB_KINDS = ("sort", "merge", "batch_update")


def check_service_stats(stats):
    """Validate a `nexsortd-stats-v1` document (docs/SERVICE.md): the
    daemon's live snapshot of its shared env, session attribution, queue
    and admission counters, tenant fair-share state, and job table."""
    check(stats.get("schema") == "nexsortd-stats-v1",
          f"service stats schema is {stats.get('schema')!r}, "
          "expected 'nexsortd-stats-v1'")
    uptime = stats.get("uptime_seconds")
    check(isinstance(uptime, (int, float)) and uptime >= 0,
          "service stats: uptime_seconds is not a non-negative number")
    for key in ("env", "sessions", "queue", "admission", "tenants", "jobs"):
        check(key in stats, f"service stats: missing top-level key '{key}'")

    env = stats.get("env", {})
    check(isinstance(env, dict), "service stats: env is not an object")
    if isinstance(env, dict):
        for key in ENV_KEYS:
            check(key in env, f"service stats env: missing key '{key}'")

    check_sessions(stats.get("sessions", []), allow_idle=True)

    queue = stats.get("queue", {})
    for key in ("depth", "max_depth", "dispatched", "rejected"):
        check(isinstance(queue.get(key), int),
              f"service stats queue: '{key}' is not an integer")
    if isinstance(queue.get("depth"), int) and \
            isinstance(queue.get("max_depth"), int):
        check(queue["depth"] <= queue["max_depth"],
              "service stats queue: depth exceeds max_depth")

    admission = stats.get("admission", {})
    for key in ("grant_blocks", "admissible_blocks", "ledger_blocks",
                "admitted_jobs", "swept_orphans"):
        check(isinstance(admission.get(key), int),
              f"service stats admission: '{key}' is not an integer")
    if isinstance(admission.get("ledger_blocks"), int) and \
            isinstance(admission.get("admissible_blocks"), int):
        check(admission["ledger_blocks"] <= admission["admissible_blocks"],
              "service stats admission: ledger exceeds the admissible pool")

    tenants = stats.get("tenants", [])
    check(isinstance(tenants, list), "service stats: tenants is not a list")
    for tenant in tenants if isinstance(tenants, list) else []:
        where = f"service stats tenant {tenant.get('tenant')!r}"
        check(isinstance(tenant.get("tenant"), str) and tenant.get("tenant"),
              f"{where}: missing tenant name")
        for key in ("weight", "pass"):
            check(isinstance(tenant.get(key), (int, float)),
                  f"{where}: '{key}' is not numeric")
        check(tenant.get("weight", 0) > 0, f"{where}: weight is not positive")
        for key in ("in_flight", "bytes_in_flight", "queued", "dispatched"):
            check(isinstance(tenant.get(key), int),
                  f"{where}: '{key}' is not an integer")

    jobs = stats.get("jobs", [])
    check(isinstance(jobs, list), "service stats: jobs is not a list")
    job_ids = [j.get("id") for j in jobs] if isinstance(jobs, list) else []
    check(len(job_ids) == len(set(job_ids)),
          "service stats: duplicate job ids")
    for job in jobs if isinstance(jobs, list) else []:
        where = f"service stats job {job.get('id')!r}"
        check(isinstance(job.get("id"), int), f"{where}: id is not an integer")
        check(job.get("kind") in JOB_KINDS,
              f"{where}: unknown kind {job.get('kind')!r}")
        check(job.get("state") in JOB_STATES,
              f"{where}: unknown state {job.get('state')!r}")
        check(isinstance(job.get("tenant"), str) and job.get("tenant"),
              f"{where}: missing tenant")
        check(isinstance(job.get("submit_seconds"), (int, float)),
              f"{where}: submit_seconds is not numeric")
        for key in ("input_bytes", "output_bytes"):
            check(isinstance(job.get(key), int),
                  f"{where}: '{key}' is not an integer")
        if job.get("state") in ("done", "failed", "cancelled"):
            check(isinstance(job.get("finish_seconds"), (int, float)),
                  f"{where}: terminal job is missing finish_seconds")
        if job.get("state") == "failed":
            check(isinstance(job.get("error"), str) and job.get("error"),
                  f"{where}: failed job carries no error text")
        if "streamed" in job:
            check(job.get("streamed") is True,
                  f"{where}: streamed must be true when present")
            check(job.get("kind") == "sort",
                  f"{where}: streamed on a non-sort job")
            if job.get("state") == "done":
                ttfb = job.get("time_to_first_byte_ms")
                check(isinstance(ttfb, (int, float)) and ttfb >= 0,
                      f"{where}: streamed done job is missing "
                      "time_to_first_byte_ms")


def check_trace(path):
    lines = path.read_text().splitlines()
    check(len(lines) > 0, "trace: empty JSONL stream")
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            check(False, f"trace line {i}: invalid JSON ({err})")
            continue
        check(record.get("type") in ("span", "run_event"),
              f"trace line {i}: unknown type {record.get('type')!r}")


TIMELINE_REQUIRED_GAUGES = ("budget_used_blocks", "budget_total_blocks",
                            "io_logical_total", "io_physical_total",
                            "sessions_active", "runs_live")


def check_timeline(path, expect_interval_ms):
    """Validate a nexsort-timeline-v1 JSONL stream: one self-describing
    header record, then samples with non-decreasing timestamps, numeric
    gauges, monotone I/O totals, and the hit-rate absence convention."""
    try:
        lines = path.read_text().splitlines()
    except OSError as err:
        check(False, f"timeline: cannot read {path}: {err}")
        return
    check(len(lines) >= 2, "timeline: expected a header plus >= 1 sample")
    if not lines:
        return
    records = []
    for i, line in enumerate(lines, 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            check(False, f"timeline line {i}: invalid JSON ({err})")
            return

    header = records[0]
    check(header.get("type") == "header",
          f"timeline: first record type is {header.get('type')!r}")
    check(header.get("schema") == "nexsort-timeline-v1",
          f"timeline schema is {header.get('schema')!r}, "
          "expected 'nexsort-timeline-v1'")
    check(header.get("sample_interval_ms") == expect_interval_ms,
          f"timeline header: sample_interval_ms is "
          f"{header.get('sample_interval_ms')!r}, expected "
          f"{expect_interval_ms}")
    env = header.get("env")
    check(isinstance(env, dict), "timeline header: missing env description")
    if isinstance(env, dict):
        for key in ENV_KEYS:
            check(key in env, f"timeline header env: missing key '{key}'")

    prev_t = -1.0
    prev_logical = -1.0
    prev_physical = -1.0
    for i, record in enumerate(records[1:], 2):
        where = f"timeline line {i}"
        check(record.get("type") == "sample",
              f"{where}: unknown type {record.get('type')!r}")
        t_seconds = record.get("t_seconds")
        check(isinstance(t_seconds, (int, float)) and t_seconds >= 0,
              f"{where}: t_seconds is not a non-negative number")
        if isinstance(t_seconds, (int, float)):
            check(t_seconds >= prev_t,
                  f"{where}: t_seconds went backwards")
            prev_t = t_seconds
        gauges = record.get("gauges")
        check(isinstance(gauges, dict), f"{where}: gauges is not an object")
        if not isinstance(gauges, dict):
            continue
        for name, value in gauges.items():
            check(isinstance(value, (int, float)),
                  f"{where}: gauge '{name}' is not numeric")
        for name in TIMELINE_REQUIRED_GAUGES:
            check(name in gauges, f"{where}: missing gauge '{name}'")
        # Lifetime totals only ever grow.
        logical = gauges.get("io_logical_total", 0)
        physical = gauges.get("io_physical_total", 0)
        check(logical >= prev_logical, f"{where}: io_logical_total fell")
        check(physical >= prev_physical, f"{where}: io_physical_total fell")
        prev_logical, prev_physical = logical, physical
        # The hit-rate gauge only exists once the pool saw an access.
        accesses = gauges.get("cache_hits", 0) + gauges.get("cache_misses", 0)
        if accesses == 0:
            check("cache_hit_rate_pct" not in gauges,
                  f"{where}: cache_hit_rate_pct present with zero accesses")
        else:
            check("cache_hit_rate_pct" in gauges,
                  f"{where}: cache_hit_rate_pct missing despite accesses")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xmlsort", help="path to the xmlsort binary")
    parser.add_argument("--fixture", help="small XML document to sort")
    parser.add_argument("--keep", default=None,
                        help="write artifacts into this directory and keep "
                             "them (default: a temp dir)")
    parser.add_argument("--service-stats", default=None,
                        help="validate this nexsortd-stats-v1 document "
                             "instead of driving xmlsort")
    args = parser.parse_args()

    if args.service_stats:
        try:
            stats = json.loads(Path(args.service_stats).read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL: cannot parse {args.service_stats}: {err}",
                  file=sys.stderr)
            return 1
        # `nexsortctl stats` wraps the document in a wire response; accept
        # either the raw stats object or that envelope.
        if "stats" in stats and "schema" not in stats:
            stats = stats["stats"]
        check_service_stats(stats)
        if FAILURES:
            for failure in FAILURES:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("service stats schema OK")
        return 0

    if not args.xmlsort or not args.fixture:
        parser.error("--xmlsort and --fixture are required unless "
                     "--service-stats is given")

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(args.keep) if args.keep else Path(tmp)
        workdir.mkdir(parents=True, exist_ok=True)

        # Seven runs: the default (cache and pipeline off, the stats blocks
        # must say so), a cached run (cache counters populated and mirrored
        # into the telemetry), a parallel run (worker threads + merge
        # prefetching; parallel counters populated, output byte-identical
        # to the serial runs), a sampled run (live sampler on, timeline
        # JSONL validated record-by-record; sampling must not change the
        # sorted bytes either), a replacement-selection run (the sort block
        # names the policy; output still byte-identical), a streamed
        # run (pull-based output; time_to_first_byte_ms recorded and
        # bounded by the wall time, bytes identical again), and a greedy
        # merge-policy run with placement off (the A/B baseline of
        # docs/MERGE_PLANNING.md; output byte-identical once more).
        sample_interval_ms = 2
        outputs = {}
        for (label, extra, cache_enabled, parallel_enabled,
             expect_policy, expect_streaming, expect_merge_policy) in (
            ("default", [], False, False, "quicksort_chunks", False,
             "planned"),
            ("cached", ["--cache-blocks", "32", "--readahead", "4"],
             True, False, "quicksort_chunks", False, "planned"),
            ("parallel", ["--cache-blocks", "32", "--threads", "2",
                          "--prefetch-depth", "4"], True, True,
             "quicksort_chunks", False, "planned"),
            ("sampled", ["--cache-blocks", "32", "--threads", "2",
                         "--sample-interval-ms", str(sample_interval_ms)],
             True, True, "quicksort_chunks", False, "planned"),
            ("replacement", ["--run-formation", "replacement"],
             False, False, "replacement_selection", False, "planned"),
            ("streamed", ["--stream"], False, False,
             "quicksort_chunks", True, "planned"),
            ("greedy", ["--merge-policy", "greedy", "--no-dfs-placement"],
             False, False, "quicksort_chunks", False, "greedy"),
        ):
            stats_path = workdir / f"stats-{label}.json"
            trace_path = workdir / f"trace-{label}.jsonl"
            output_path = workdir / f"sorted-{label}.xml"
            timeline_path = workdir / f"timeline-{label}.jsonl"

            command = [
                args.xmlsort, "--numeric", *extra,
                "--stats-json", str(stats_path),
                "--trace-out", str(trace_path),
                args.fixture, str(output_path),
            ]
            if label == "sampled":
                command[-2:-2] = ["--timeline-out", str(timeline_path)]
            result = subprocess.run(command, capture_output=True, text=True)
            if result.returncode != 0:
                print(f"FAIL: xmlsort ({label}) exited {result.returncode}",
                      file=sys.stderr)
                sys.stderr.write(result.stderr)
                return 1

            try:
                stats = json.loads(stats_path.read_text())
            except (OSError, json.JSONDecodeError) as err:
                print(f"FAIL: cannot parse {stats_path}: {err}",
                      file=sys.stderr)
                return 1
            check_stats(stats, cache_enabled=cache_enabled,
                        parallel_enabled=parallel_enabled,
                        expect_policy=expect_policy,
                        expect_streaming=expect_streaming,
                        expect_merge_policy=expect_merge_policy)
            check(output_path.exists() and output_path.stat().st_size > 0,
                  f"xmlsort ({label}) produced no output document")
            check_trace(trace_path)
            if label == "sampled":
                check_timeline(timeline_path, sample_interval_ms)
            outputs[label] = output_path.read_bytes()

        for label, data in outputs.items():
            check(data == outputs["default"],
                  f"output of run '{label}' differs from the default run")

    if FAILURES:
        for failure in FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("telemetry schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
