#!/usr/bin/env python3
"""Validate xmlsort's telemetry export against the documented schema.

Runs `xmlsort --stats-json --trace-out` on a small fixture and checks that
the emitted JSON carries everything docs/OBSERVABILITY.md promises to
consumers: per-phase wall time and per-category I/O counts on every span,
the memory peak, the run count, and the run-size histogram. Wired into
ctest as `telemetry_schema_check` so a schema regression fails the suite.

Usage:
  check_telemetry_schema.py --xmlsort BIN --fixture FILE [--keep DIR]
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

IO_CATEGORIES = [
    "input", "output", "data-stack", "path-stack", "output-stack",
    "run-write", "run-read", "sort-temp", "other",
]

FAILURES = []


def check(condition, message):
    if not condition:
        FAILURES.append(message)


def check_io_object(io, where, sparse_categories=False):
    """Validate one io object. `stats.io` carries all nine categories with
    zeros included; span io objects are sparse (only non-zero deltas)."""
    for key in ("reads", "writes", "total", "modeled_seconds", "categories"):
        check(key in io, f"{where}: missing io key '{key}'")
    categories = io.get("categories", {})
    if not sparse_categories:
        for name in IO_CATEGORIES:
            check(name in categories,
                  f"{where}: missing io category '{name}'")
    for name, entry in categories.items():
        check(name in IO_CATEGORIES,
              f"{where}: unknown io category '{name}'")
        check("reads" in entry and "writes" in entry,
              f"{where}: category '{name}' missing reads/writes")


def check_telemetry(telemetry):
    check(telemetry.get("schema") == "nexsort-telemetry-v1",
          f"telemetry schema is {telemetry.get('schema')!r}, "
          "expected 'nexsort-telemetry-v1'")
    check(isinstance(telemetry.get("elapsed_seconds"), (int, float)),
          "telemetry: missing elapsed_seconds")

    spans = telemetry.get("spans", [])
    check(len(spans) > 0, "telemetry: no spans recorded")
    names = [s.get("name") for s in spans]
    for expected in ("nexsort", "sorting_phase", "output_phase"):
        check(expected in names, f"telemetry: missing span '{expected}'")
    for span in spans:
        where = f"span '{span.get('name')}'"
        check(isinstance(span.get("wall_seconds"), (int, float)),
              f"{where}: missing wall_seconds")
        check(span.get("closed") is True, f"{where}: not closed")
        check("io" in span, f"{where}: missing io")
        if "io" in span:
            check_io_object(span["io"], where, sparse_categories=True)
        check("memory" in span, f"{where}: missing memory")
        for key in ("budget_used_open", "budget_used_close", "budget_peak"):
            check(key in span.get("memory", {}), f"{where}: missing {key}")

    run_events = telemetry.get("run_events", {})
    check("count" in run_events, "telemetry: run_events missing count")
    by_kind = run_events.get("by_kind", {})
    for kind in ("created", "fragment", "read-back", "merged", "freed"):
        check(kind in by_kind, f"telemetry: run_events missing kind '{kind}'")

    metrics = telemetry.get("metrics", {})
    histograms = metrics.get("histograms", {})
    check("run_size_bytes" in histograms,
          "telemetry: missing run_size_bytes histogram")
    for name, hist in histograms.items():
        for key in ("count", "sum", "min", "max", "mean", "p50", "p90",
                    "p99", "buckets"):
            check(key in hist, f"histogram '{name}': missing '{key}'")
        for bucket in hist.get("buckets", []):
            check(isinstance(bucket, list) and len(bucket) == 2,
                  f"histogram '{name}': bucket is not [upper_bound, count]")


CACHE_COUNTER_KEYS = ("hits", "misses", "hit_rate", "evictions",
                      "writebacks", "writeback_failures", "prefetches")


def check_cache(cache, cache_enabled):
    """Validate the stats.cache block for a run with caching on or off."""
    for key in ("enabled", "frames", "readahead", "counters"):
        check(key in cache, f"stats.cache: missing key '{key}'")
    check(cache.get("enabled") is cache_enabled,
          f"stats.cache: enabled is {cache.get('enabled')!r}, "
          f"expected {cache_enabled}")
    counters = cache.get("counters", {})
    for key in CACHE_COUNTER_KEYS:
        check(key in counters, f"stats.cache.counters: missing '{key}'")
    if cache_enabled:
        check(cache.get("frames", 0) > 0,
              "stats.cache: enabled but frames == 0")
        accesses = counters.get("hits", 0) + counters.get("misses", 0)
        check(accesses > 0,
              "stats.cache: enabled but the pool saw no accesses")
    else:
        for key in ("hits", "misses", "evictions", "prefetches"):
            check(counters.get(key) == 0,
                  f"stats.cache.counters: '{key}' non-zero with cache off")


def check_cache_metrics(telemetry):
    """With caching on, the pool's counters must reach the metrics export."""
    metrics = telemetry.get("metrics", {})
    counters = metrics.get("counters", {})
    for name in ("cache_hits", "cache_misses"):
        check(name in counters, f"telemetry: missing counter '{name}'")
    gauges = metrics.get("gauges", {})
    check("cache_hit_rate_pct" in gauges,
          "telemetry: missing gauge 'cache_hit_rate_pct'")


PARALLEL_COUNTER_KEYS = ("async_spills", "sync_spills",
                         "double_buffer_declined", "parallel_sorts",
                         "sort_partitions", "prefetch_issued",
                         "prefetch_declined", "spill_wait_seconds",
                         "spill_busy_seconds")


def check_parallel(parallel, parallel_enabled):
    """Validate the stats.parallel block in serial and parallel runs."""
    for key in ("enabled", "threads", "prefetch_depth", "counters"):
        check(key in parallel, f"stats.parallel: missing key '{key}'")
    check(parallel.get("enabled") is parallel_enabled,
          f"stats.parallel: enabled is {parallel.get('enabled')!r}, "
          f"expected {parallel_enabled}")
    counters = parallel.get("counters", {})
    for key in PARALLEL_COUNTER_KEYS:
        check(key in counters, f"stats.parallel.counters: missing '{key}'")
    if parallel_enabled:
        check(parallel.get("threads", 0) > 0
              or parallel.get("prefetch_depth", 0) > 0,
              "stats.parallel: enabled without threads or prefetch_depth")
    else:
        for key in ("async_spills", "parallel_sorts", "prefetch_issued"):
            check(counters.get(key) == 0,
                  f"stats.parallel.counters: '{key}' non-zero while serial")


def check_parallel_metrics(telemetry):
    """With the pipeline on, parallel_* counters must reach the export."""
    counters = telemetry.get("metrics", {}).get("counters", {})
    for name in ("parallel_async_spills", "parallel_sync_spills",
                 "parallel_prefetch_issued"):
        check(name in counters, f"telemetry: missing counter '{name}'")


ENV_KEYS = ("block_size", "memory_blocks", "device", "layers",
            "cache_frames", "readahead", "threads", "prefetch_depth",
            "sort_memory_blocks")

KNOWN_LAYERS = ("throttle", "fault")


def check_env(env, stats):
    """Validate the stats.env block: the composed SortEnv configuration.

    Must agree with the sibling top-level fields (block_size,
    memory_blocks) and with the cache/parallel blocks derived from the
    same SortEnvOptions.
    """
    for key in ENV_KEYS:
        check(key in env, f"stats.env: missing key '{key}'")
    check(env.get("block_size") == stats.get("block_size"),
          "stats.env.block_size disagrees with stats.block_size")
    check(env.get("memory_blocks") == stats.get("memory_blocks"),
          "stats.env.memory_blocks disagrees with stats.memory_blocks")
    check(env.get("device") in ("memory", "file"),
          f"stats.env.device is {env.get('device')!r}, "
          "expected 'memory' or 'file'")
    layers = env.get("layers", None)
    check(isinstance(layers, list), "stats.env.layers is not a list")
    for layer in layers or []:
        check(layer in KNOWN_LAYERS,
              f"stats.env.layers: unknown layer {layer!r}")
    cache = stats.get("cache", {})
    check(env.get("cache_frames") == cache.get("frames"),
          "stats.env.cache_frames disagrees with stats.cache.frames")
    check(env.get("readahead") == cache.get("readahead"),
          "stats.env.readahead disagrees with stats.cache.readahead")
    parallel = stats.get("parallel", {})
    check(env.get("threads") == parallel.get("threads"),
          "stats.env.threads disagrees with stats.parallel.threads")
    check(env.get("prefetch_depth") == parallel.get("prefetch_depth"),
          "stats.env.prefetch_depth disagrees with "
          "stats.parallel.prefetch_depth")


def check_stats(stats, cache_enabled=False, parallel_enabled=False):
    check(stats.get("schema") == "nexsort-stats-v1",
          f"stats schema is {stats.get('schema')!r}, "
          "expected 'nexsort-stats-v1'")
    for key in ("tool", "input", "block_size", "memory_blocks",
                "memory_peak_blocks", "run_count", "env", "io", "cache",
                "parallel", "nexsort", "telemetry"):
        check(key in stats, f"stats: missing top-level key '{key}'")
    if "env" in stats:
        check_env(stats["env"], stats)
    check(isinstance(stats.get("memory_peak_blocks"), int),
          "stats: memory_peak_blocks is not an integer")
    check(isinstance(stats.get("run_count"), int),
          "stats: run_count is not an integer")
    if "io" in stats:
        check_io_object(stats["io"], "stats.io")
    if "cache" in stats:
        check_cache(stats["cache"], cache_enabled)
    if "parallel" in stats:
        check_parallel(stats["parallel"], parallel_enabled)
    if "telemetry" in stats:
        check_telemetry(stats["telemetry"])
        if cache_enabled:
            check_cache_metrics(stats["telemetry"])
        if parallel_enabled:
            check_parallel_metrics(stats["telemetry"])


def check_trace(path):
    lines = path.read_text().splitlines()
    check(len(lines) > 0, "trace: empty JSONL stream")
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            check(False, f"trace line {i}: invalid JSON ({err})")
            continue
        check(record.get("type") in ("span", "run_event"),
              f"trace line {i}: unknown type {record.get('type')!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xmlsort", required=True,
                        help="path to the xmlsort binary")
    parser.add_argument("--fixture", required=True,
                        help="small XML document to sort")
    parser.add_argument("--keep", default=None,
                        help="write artifacts into this directory and keep "
                             "them (default: a temp dir)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(args.keep) if args.keep else Path(tmp)
        workdir.mkdir(parents=True, exist_ok=True)

        # Three runs: the default (cache and pipeline off, the stats blocks
        # must say so), a cached run (cache counters populated and mirrored
        # into the telemetry), and a parallel run (worker threads + merge
        # prefetching; parallel counters populated, output byte-identical
        # to the serial runs).
        outputs = {}
        for label, extra, cache_enabled, parallel_enabled in (
            ("default", [], False, False),
            ("cached", ["--cache-blocks", "32", "--readahead", "4"],
             True, False),
            ("parallel", ["--cache-blocks", "32", "--threads", "2",
                          "--prefetch-depth", "4"], True, True),
        ):
            stats_path = workdir / f"stats-{label}.json"
            trace_path = workdir / f"trace-{label}.jsonl"
            output_path = workdir / f"sorted-{label}.xml"

            command = [
                args.xmlsort, "--numeric", *extra,
                "--stats-json", str(stats_path),
                "--trace-out", str(trace_path),
                args.fixture, str(output_path),
            ]
            result = subprocess.run(command, capture_output=True, text=True)
            if result.returncode != 0:
                print(f"FAIL: xmlsort ({label}) exited {result.returncode}",
                      file=sys.stderr)
                sys.stderr.write(result.stderr)
                return 1

            try:
                stats = json.loads(stats_path.read_text())
            except (OSError, json.JSONDecodeError) as err:
                print(f"FAIL: cannot parse {stats_path}: {err}",
                      file=sys.stderr)
                return 1
            check_stats(stats, cache_enabled=cache_enabled,
                        parallel_enabled=parallel_enabled)
            check(output_path.exists() and output_path.stat().st_size > 0,
                  f"xmlsort ({label}) produced no output document")
            check_trace(trace_path)
            outputs[label] = output_path.read_bytes()

        for label, data in outputs.items():
            check(data == outputs["default"],
                  f"output of run '{label}' differs from the default run")

    if FAILURES:
        for failure in FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("telemetry schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
