#!/usr/bin/env python3
"""Shared helpers for the static-analysis runners (docs/STATIC_ANALYSIS.md).

run_clang_tidy.py, run_thread_safety.py, and nexsort_lint.py all reduce
tool output to *normalized findings* so baselines stay stable and the
three gates print comparable lines. The canonical normalized form is

    <repo-relative-path>\t<check-id>\t<message>

with the path in forward slashes, line/column numbers dropped (unrelated
edits must not churn baselines), and unstable message fragments (pointer
addresses) collapsed. Baseline files hold one normalized finding per line;
'#' lines are comments.
"""

import os
import re

# The ctest convention for "tool not installed here": SKIP_RETURN_CODE 77
# maps this to a SKIPPED (not failed) test.
SKIP_EXIT = 77

_HEX_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def rel_to_root(root, path):
    """Repo-relative forward-slash path for any absolute or relative
    `path`."""
    return os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")


def collapse_unstable(message):
    """Strip run-to-run noise from a diagnostic message: pointer addresses
    become 0xN, surrounding whitespace goes."""
    return _HEX_ADDR.sub("0xN", message.strip())


def normalize_finding(root, path, check, message):
    """The canonical normalized-finding line (see module docstring)."""
    return f"{rel_to_root(root, path)}\t{check}\t{collapse_unstable(message)}"


def read_baseline(path):
    """Normalized findings from a baseline file; empty set when absent."""
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def write_baseline(path, findings, tool):
    """Rewrite a baseline file, sorted, with the standard header."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(
            f"# {tool} baseline: existing findings the runner tolerates.\n"
            "# One normalized finding per line\n"
            "# (<relpath>\\t<check>\\t<message>). Shrink it whenever a\n"
            "# finding is fixed; never grow it without a review.\n"
        )
        for line in sorted(findings):
            f.write(line + "\n")
