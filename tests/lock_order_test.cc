// Tests for the debug lock-order checker behind Mutex / MutexLock /
// CondVar (src/util/thread_annotations.h). Three contracts:
//
//  1. Debug builds (NEXSORT_DCHECK_ENABLED): acquiring a mutex at a rank
//     <= any mutex the thread already holds dies deterministically at the
//     acquisition — a would-be deadlock cycle cannot survive to an
//     unlucky schedule.
//  2. Release builds: the checker compiles to nothing — an inverted
//     acquisition order is not checked (and must not crash), and the
//     test hooks report an empty held stack.
//  3. The held-lock stack is exact and strictly per-thread: each thread
//     sees precisely the wrapper locks it holds, a CondVar wait pops its
//     mutex for the duration of the block, and unlock order is
//     unconstrained.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "util/dcheck.h"
#include "util/thread_annotations.h"

namespace nexsort {
namespace {

#if NEXSORT_DCHECK_ENABLED

TEST(LockOrderDeathTest, RankInversionDies) {
  // Re-exec style: other tests in this binary spawn threads, and the
  // default fork-style death test would be undefined with them around.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low{"LockOrderTest::low", lock_rank::kRunStore};
  Mutex high{"LockOrderTest::high", lock_rank::kBufferPool};
  EXPECT_DEATH(
      {
        MutexLock hold_high(&high);
        MutexLock hold_low(&low);  // rank 40 while holding rank 50
      },
      "lock-rank inversion");
}

TEST(LockOrderDeathTest, EqualRankDies) {
  // Equal ranks never nest (the hierarchy allocates one rank per mutex
  // that can be held concurrently with its neighbors).
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex first{"LockOrderTest::first", lock_rank::kLeaf};
  Mutex second{"LockOrderTest::second", lock_rank::kLeaf};
  EXPECT_DEATH(
      {
        MutexLock hold_first(&first);
        MutexLock hold_second(&second);
      },
      "lock-rank inversion");
}

TEST(LockOrderDeathTest, AssertHeldDiesWhenNotHeld) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu{"LockOrderTest::unheld", lock_rank::kLeaf};
  EXPECT_DEATH(mu.AssertHeld(), "not held");
}

TEST(LockOrderTest, AscendingRanksAreLegal) {
  Mutex service{"LockOrderTest::service", lock_rank::kSortService};
  Mutex pool{"LockOrderTest::pool", lock_rank::kBufferPool};
  Mutex budget{"LockOrderTest::budget", lock_rank::kMemoryBudget};
  MutexLock a(&service);
  MutexLock b(&pool);
  MutexLock c(&budget);
  EXPECT_EQ(internal::HeldLockCount(), 3);
  EXPECT_TRUE(internal::HoldsLock(&service));
  EXPECT_TRUE(internal::HoldsLock(&pool));
  EXPECT_TRUE(internal::HoldsLock(&budget));
}

TEST(LockOrderTest, OutOfOrderUnlockIsLegal) {
  // The hierarchy constrains acquisition only; releases may interleave
  // (BufferPool's WriteBack drops the table lock mid-scope).
  Mutex outer{"LockOrderTest::outer", lock_rank::kRunStore};
  Mutex inner{"LockOrderTest::inner", lock_rank::kBufferPool};
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // released before the higher-ranked inner
  EXPECT_EQ(internal::HeldLockCount(), 1);
  EXPECT_TRUE(internal::HoldsLock(&inner));
  EXPECT_FALSE(internal::HoldsLock(&outer));
  inner.Unlock();
  EXPECT_EQ(internal::HeldLockCount(), 0);
}

TEST(LockOrderTest, CondVarWaitPopsHeldRecord) {
  // While blocked in Wait the mutex is physically released; the held
  // record must drop with it or a concurrent signaller's own acquisition
  // bookkeeping would be wrong. Observable from this thread via the
  // timeout path: after WaitFor returns, the record is back.
  Mutex mu{"LockOrderTest::cv_mu", lock_rank::kLeaf};
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_EQ(internal::HeldLockCount(), 1);
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(1)));
  EXPECT_EQ(internal::HeldLockCount(), 1);
  EXPECT_TRUE(internal::HoldsLock(&mu));
}

#else  // !NEXSORT_DCHECK_ENABLED

TEST(LockOrderTest, CheckerCompilesOutInRelease) {
  // Inverted acquisition order must not be evaluated, let alone die, and
  // the test hooks report nothing held.
  Mutex low{"LockOrderTest::low", lock_rank::kRunStore};
  Mutex high{"LockOrderTest::high", lock_rank::kBufferPool};
  high.Lock();
  low.Lock();  // would die in Debug; a no-op check here
  EXPECT_EQ(internal::HeldLockCount(), 0);
  EXPECT_FALSE(internal::HoldsLock(&low));
  EXPECT_FALSE(internal::HoldsLock(&high));
  low.Unlock();
  high.Unlock();
}

#endif  // NEXSORT_DCHECK_ENABLED

TEST(LockOrderTest, HeldStackIsPerThread) {
  // Each thread's stack covers exactly its own acquisitions: a lock held
  // on the main thread is invisible to a worker and vice versa. Runs in
  // every build mode (Release asserts the hooks' constant-zero form).
  Mutex main_mu{"LockOrderTest::main", lock_rank::kRunStore};
  Mutex worker_mu{"LockOrderTest::worker", lock_rank::kBufferPool};
  MutexLock hold(&main_mu);
  std::thread worker([&] {
    MutexLock worker_hold(&worker_mu);
#if NEXSORT_DCHECK_ENABLED
    EXPECT_EQ(internal::HeldLockCount(), 1);
    EXPECT_TRUE(internal::HoldsLock(&worker_mu));
    EXPECT_FALSE(internal::HoldsLock(&main_mu));
#else
    EXPECT_EQ(internal::HeldLockCount(), 0);
#endif
  });
  worker.join();
#if NEXSORT_DCHECK_ENABLED
  EXPECT_EQ(internal::HeldLockCount(), 1);
  EXPECT_TRUE(internal::HoldsLock(&main_mu));
  EXPECT_FALSE(internal::HoldsLock(&worker_mu));
#endif
}

}  // namespace
}  // namespace nexsort
