// Randomized JSON property sweeps: generated documents round-trip through
// the encoding, and sorting matches a DOM-level reference (translate,
// recursively sort the element encoding, translate back).
#include <gtest/gtest.h>

#include "core/dom_sort.h"
#include "nested/json.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

// Deterministic random JSON generator.
class JsonGenerator {
 public:
  explicit JsonGenerator(uint64_t seed) : rng_(seed) {}

  std::string Generate(int max_depth) {
    std::string out;
    Value(&out, max_depth);
    return out;
  }

 private:
  void Value(std::string* out, int depth_left) {
    uint64_t kind = depth_left > 0 ? rng_.Uniform(6) : 2 + rng_.Uniform(4);
    switch (kind) {
      case 0: Object(out, depth_left); break;
      case 1: Array(out, depth_left); break;
      case 2: String(out); break;
      case 3:
        out->append(std::to_string(static_cast<int64_t>(rng_.Uniform(2000)) -
                                   1000));
        break;
      case 4: out->append(rng_.OneIn(2) ? "true" : "false"); break;
      default: out->append("null"); break;
    }
  }

  void Object(std::string* out, int depth_left) {
    out->push_back('{');
    int members = rng_.Uniform(5);
    for (int i = 0; i < members; ++i) {
      if (i) out->push_back(',');
      // Occasionally duplicate-free keys with varied shapes.
      out->push_back('"');
      out->append("k" + std::to_string(i) + rng_.Identifier(3));
      out->push_back('"');
      out->push_back(':');
      Value(out, depth_left - 1);
    }
    out->push_back('}');
  }

  void Array(std::string* out, int depth_left) {
    out->push_back('[');
    int items = rng_.Uniform(5);
    for (int i = 0; i < items; ++i) {
      if (i) out->push_back(',');
      Value(out, depth_left - 1);
    }
    out->push_back(']');
  }

  void String(std::string* out) {
    out->push_back('"');
    size_t length = rng_.Uniform(8);
    for (size_t i = 0; i < length; ++i) {
      switch (rng_.Uniform(12)) {
        case 0: out->append("\\\""); break;
        case 1: out->append("\\\\"); break;
        case 2: out->append("\\n"); break;
        case 3: out->append("\\u00e9"); break;
        default: out->push_back(static_cast<char>('a' + rng_.Uniform(26)));
      }
    }
    out->push_back('"');
  }

  Random rng_;
};

class JsonSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonSweep, TranslationRoundTripsThroughTheEncoding) {
  JsonGenerator generator(GetParam());
  std::string json = generator.Generate(4);

  // JSON -> encoding -> JSON with no sorting must reproduce the canonical
  // compact form, which for our generator is the input itself.
  JsonSortOptions options;
  std::string encoded;
  {
    StringByteSource source(json);
    StringByteSink sink(&encoded);
    JsonSortStats stats;
    NEX_ASSERT_OK(JsonToXml(&source, &sink, options, &stats));
  }
  std::string back;
  {
    StringByteSource source(encoded);
    StringByteSink sink(&back);
    NEX_ASSERT_OK(XmlToJson(&source, &sink));
  }
  // Compare semantically: é decodes to UTF-8 on the way through, so
  // normalize the input the same way by a second round trip.
  std::string normalized;
  {
    StringByteSource source(back);
    std::string encoded2;
    StringByteSink sink(&encoded2);
    JsonSortStats stats;
    NEX_ASSERT_OK(JsonToXml(&source, &sink, options, &stats));
    StringByteSource source2(encoded2);
    StringByteSink sink2(&normalized);
    NEX_ASSERT_OK(XmlToJson(&source2, &sink2));
  }
  EXPECT_EQ(back, normalized);  // translation is a projection (idempotent)
}

TEST_P(JsonSweep, SortMatchesDomReference) {
  JsonGenerator generator(GetParam() + 1000);
  std::string json = generator.Generate(4);

  JsonSortOptions options;
  options.sort_object_members = true;
  options.sort_arrays_by_value = true;

  // Reference: translate, recursively DOM-sort the encoding with the same
  // OrderSpec, translate back.
  std::string reference;
  {
    std::string encoded;
    StringByteSource source(json);
    StringByteSink sink(&encoded);
    JsonSortStats stats;
    NEX_ASSERT_OK(JsonToXml(&source, &sink, options, &stats));
    auto sorted_encoding =
        SortXmlStringInMemory(encoded, JsonOrderSpec(options));
    ASSERT_TRUE(sorted_encoding.ok());
    StringByteSource source2(*sorted_encoding);
    StringByteSink sink2(&reference);
    NEX_ASSERT_OK(XmlToJson(&source2, &sink2));
  }

  Env env(512, 12);
  JsonSorter sorter(env.get(), options);
  StringByteSource source(json);
  std::string sorted;
  StringByteSink sink(&sorted);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));
  EXPECT_EQ(sorted, reference) << "input: " << json;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonSweep,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace testing
}  // namespace nexsort
