// XmlWriter escaping/round-trips, DOM construction, and generators.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dom.h"
#include "xml/escape.h"
#include "xml/generator.h"
#include "xml/sax_parser.h"
#include "xml/writer.h"

namespace nexsort {
namespace testing {
namespace {

TEST(Escape, TextEscaping) {
  std::string out;
  AppendEscapedText(&out, "a<b>&c");
  EXPECT_EQ(out, "a&lt;b&gt;&amp;c");
}

TEST(Escape, AttributeEscaping) {
  std::string out;
  AppendEscapedAttribute(&out, "say \"hi\" & <go>");
  EXPECT_EQ(out, "say &quot;hi&quot; &amp; &lt;go&gt;");
}

TEST(Escape, UnescapeRoundTrip) {
  std::string escaped;
  AppendEscapedText(&escaped, "x<&>y\"z'");
  std::string back;
  NEX_ASSERT_OK(AppendUnescaped(&back, escaped));
  EXPECT_EQ(back, "x<&>y\"z'");
}

TEST(Escape, Utf8CharacterReference) {
  std::string out;
  NEX_ASSERT_OK(AppendUnescaped(&out, "&#x20AC;"));  // euro sign
  EXPECT_EQ(out, "\xE2\x82\xAC");
}

TEST(XmlWriter, BasicDocument) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriter writer(&sink);
  NEX_ASSERT_OK(writer.StartElement("a", {{"k", "v"}}));
  NEX_ASSERT_OK(writer.Text("hello"));
  NEX_ASSERT_OK(writer.StartElement("b"));
  NEX_ASSERT_OK(writer.Finish());  // closes b then a
  EXPECT_EQ(out, "<a k=\"v\">hello<b></b></a>");
}

TEST(XmlWriter, EscapesContentAndAttributes) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriter writer(&sink);
  NEX_ASSERT_OK(writer.StartElement("a", {{"k", "<\">"}}));
  NEX_ASSERT_OK(writer.Text("1 < 2 & 3"));
  NEX_ASSERT_OK(writer.Finish());
  EXPECT_EQ(out, "<a k=\"&lt;&quot;&gt;\">1 &lt; 2 &amp; 3</a>");
}

TEST(XmlWriter, PrettyPrinting) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriterOptions options;
  options.pretty = true;
  XmlWriter writer(&sink, options);
  NEX_ASSERT_OK(writer.StartElement("a"));
  NEX_ASSERT_OK(writer.StartElement("b"));
  NEX_ASSERT_OK(writer.Text("x"));
  NEX_ASSERT_OK(writer.Finish());
  EXPECT_EQ(out, "<a>\n  <b>x</b>\n</a>");
}

TEST(XmlWriter, EndWithoutStartFails) {
  std::string out;
  StringByteSink sink(&out);
  XmlWriter writer(&sink);
  EXPECT_TRUE(writer.EndElement().IsInvalidArgument());
}

TEST(XmlWriter, ParserRoundTrip) {
  // writer -> parser -> writer must be a fixed point.
  const std::string xml =
      "<shop><item id=\"1\" note=\"a&amp;b\">caf&#xE9;</item>"
      "<empty></empty></shop>";
  StringByteSource source(xml);
  SaxParser parser(&source);
  std::string out;
  StringByteSink sink(&out);
  XmlWriter writer(&sink);
  XmlEvent event;
  while (true) {
    auto more = parser.Next(&event);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    NEX_ASSERT_OK(writer.Event(event));
  }
  NEX_ASSERT_OK(writer.Finish());
  EXPECT_EQ(out, "<shop><item id=\"1\" note=\"a&amp;b\">caf\xC3\xA9</item>"
                 "<empty></empty></shop>");
}

TEST(Dom, ParseAndSerialize) {
  auto root = ParseDom("<a x=\"1\"><b>t</b><c/></a>");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->name, "a");
  ASSERT_EQ((*root)->children.size(), 2u);
  EXPECT_EQ(SerializeDom(**root), "<a x=\"1\"><b>t</b><c></c></a>");
}

TEST(Dom, BuilderHelpers) {
  auto root = XmlNode::Element("doc");
  XmlNode* child = root->AddElement("item");
  child->SetAttribute("id", "7");
  child->SetAttribute("id", "8");  // overwrite
  child->AddText("payload");
  EXPECT_EQ(SerializeDom(*root), "<doc><item id=\"8\">payload</item></doc>");
  EXPECT_EQ(*child->FindAttribute("id"), "8");
  EXPECT_EQ(child->FindAttribute("nope"), nullptr);
}

TEST(Dom, Metrics) {
  auto root = ParseDom("<a><b><c/><c/><c/></b><b/></a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->SubtreeSize(), 6u);
  EXPECT_EQ((*root)->MaxFanout(), 3u);
  EXPECT_EQ((*root)->Height(), 3);
}

TEST(Dom, EqualsAndClone) {
  auto a = ParseDom("<a x=\"1\"><b>t</b></a>");
  ASSERT_TRUE(a.ok());
  auto b = (*a)->Clone();
  EXPECT_TRUE((*a)->Equals(*b));
  b->children[0]->AddText("extra");
  EXPECT_FALSE((*a)->Equals(*b));
}

TEST(Generator, RandomTreeRespectsShapeBounds) {
  RandomTreeGenerator generator(4, 7, {.seed = 2});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(generator.stats().height, 4);
  EXPECT_LE(generator.stats().max_fanout, 7u);
  EXPECT_GE(generator.stats().max_fanout, 1u);

  auto dom = ParseDom(*xml);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ((*dom)->Height(), 4);
}

TEST(Generator, DeterministicPerSeed) {
  RandomTreeGenerator a(3, 5, {.seed = 10});
  RandomTreeGenerator b(3, 5, {.seed = 10});
  RandomTreeGenerator c(3, 5, {.seed = 11});
  auto xa = a.GenerateString();
  auto xb = b.GenerateString();
  auto xc = c.GenerateString();
  ASSERT_TRUE(xa.ok() && xb.ok() && xc.ok());
  EXPECT_EQ(*xa, *xb);
  EXPECT_NE(*xa, *xc);
}

TEST(Generator, ShapeGeneratorExactCounts) {
  ShapeGenerator generator({3, 4, 2}, {.seed = 1, .leaf_text = false});
  EXPECT_EQ(generator.ExpectedElements(), 1u + 3u + 12u + 24u);
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(generator.stats().elements, 40u);
  EXPECT_EQ(generator.stats().max_fanout, 4u);
  EXPECT_EQ(generator.stats().height, 4);
}

TEST(Generator, ElementBytesApproximated) {
  ShapeGenerator generator({100}, {.seed = 4, .element_bytes = 150,
                                   .leaf_text = false});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  double avg = static_cast<double>(xml->size()) / 101.0;
  EXPECT_NEAR(avg, 150.0, 15.0);
}

TEST(Generator, FlatTableTwoShape) {
  // The paper's Table 2 height-2 document is a root with N children.
  ShapeGenerator generator({500}, {.seed = 6});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  auto dom = ParseDom(*xml);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ((*dom)->children.size(), 500u);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
