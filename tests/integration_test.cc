// End-to-end integration: the full pipeline over a real file-backed block
// device (generate -> store -> NEXSORT -> verify), the sort -> merge ->
// check chain, and cross-feature compositions.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/sorted_check.h"
#include "merge/structural_merge.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(Integration, FileBackedSortEndToEnd) {
  std::string path = ::testing::TempDir() + "/nexsort_integration.work";
  SortEnvOptions env_options;
  env_options.block_size = 4096;
  env_options.memory_blocks = 16;
  env_options.file_path = path;
  Env env(std::move(env_options));
  BlockDevice* device = env.device();
  MemoryBudget* budget = env.budget();

  // Generate straight onto the device, then sort from and to the device —
  // no in-memory copies of the document anywhere.
  RandomTreeGenerator generator(5, 7, {.seed = 500, .element_bytes = 120});
  ByteRange input_range;
  {
    BlockStreamWriter writer(device, budget, IoCategory::kOther);
    NEX_ASSERT_OK(writer.init_status());
    NEX_ASSERT_OK(generator.Generate(&writer));
    NEX_ASSERT_OK(writer.Finish(&input_range));
  }

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  NexSorter sorter(env.get(), options);
  ByteRange output_range;
  {
    BlockStreamReader reader(device, budget, input_range, IoCategory::kInput);
    NEX_ASSERT_OK(reader.init_status());
    BlockStreamWriter writer(device, budget, IoCategory::kOutput);
    NEX_ASSERT_OK(writer.init_status());
    NEX_ASSERT_OK(sorter.Sort(&reader, &writer));
    NEX_ASSERT_OK(writer.Finish(&output_range));
  }
  EXPECT_EQ(sorter.stats().scan.elements, generator.stats().elements);

  // Verify sortedness streaming from the file, and against the oracle.
  {
    BlockStreamReader reader(device, budget, output_range,
                             IoCategory::kInput);
    NEX_ASSERT_OK(reader.init_status());
    auto report = CheckSorted(&reader, options.order);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->sorted) << report->violation;
  }
  auto input_text = LoadBytes(device, budget, input_range);
  auto output_text = LoadBytes(device, budget, output_range);
  ASSERT_TRUE(input_text.ok() && output_text.ok());
  EXPECT_EQ(*output_text, OracleSort(*input_text, options.order));
  std::remove(path.c_str());
}

TEST(Integration, SortMergeCheckChain) {
  // Two generated documents -> sort both -> merge -> result must pass the
  // sortedness check and contain every element of both inputs.
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  RandomTreeGenerator left_generator(4, 5,
                                     {.seed = 501, .element_bytes = 60,
                                      .leaf_text = false});
  RandomTreeGenerator right_generator(4, 5,
                                      {.seed = 502, .element_bytes = 60,
                                       .leaf_text = false});
  auto left_xml = left_generator.GenerateString();
  auto right_xml = right_generator.GenerateString();
  ASSERT_TRUE(left_xml.ok() && right_xml.ok());

  NexSortOptions options;
  options.order = spec;
  std::string left_sorted = NexSortString(*left_xml, options);
  NexSortOptions options2;
  options2.order = spec;
  std::string right_sorted = NexSortString(*right_xml, options2);

  MergeOptions merge_options;
  merge_options.order = spec;
  StringByteSource left(left_sorted);
  StringByteSource right(right_sorted);
  std::string merged;
  StringByteSink sink(&merged);
  MergeStats stats;
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, merge_options, &stats));

  auto report = CheckSorted(merged, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->sorted) << report->violation;
  // Random ids rarely coincide: nearly everything flows through the
  // one-sided copy paths, and nothing may be dropped.
  EXPECT_GT(stats.left_only, 0u);
  EXPECT_GT(stats.right_only, 0u);
}

TEST(Integration, OrderRecordingComposesWithDepthLimit) {
  RandomTreeGenerator generator(4, 5, {.seed = 503, .element_bytes = 60,
                                       .leaf_text = false});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.depth_limit = 2;
  options.record_order_attribute = "nx_seq";
  std::string sorted = NexSortString(*xml, options);

  // Restore and compare: round trip through a depth-limited sort still
  // recovers the original document exactly.
  NexSortOptions restore;
  restore.order = OrderSpec::ByAttribute("nx_seq", /*numeric=*/true);
  restore.strip_attribute = "nx_seq";
  EXPECT_EQ(NexSortString(sorted, restore), *xml);
}

TEST(Integration, RepeatedSortsOnOneDeviceReuseSpace) {
  // Many sorts against the same device must not grow it unboundedly
  // within a run (each NexSorter frees nothing itself, but stacks and
  // sort temps recycle; runs are per-sorter). Verify budget hygiene: all
  // blocks returned after each sort.
  Env env(512, 16);
  for (int round = 0; round < 5; ++round) {
    RandomTreeGenerator generator(
        4, 5, {.seed = 600u + round, .element_bytes = 60});
    auto xml = generator.GenerateString();
    ASSERT_TRUE(xml.ok());
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", true);
    NexSorter sorter(env.get(), options);
    StringByteSource source(*xml);
    std::string out;
    StringByteSink sink(&out);
    NEX_ASSERT_OK(sorter.Sort(&source, &sink));
    EXPECT_EQ(env.budget()->used_blocks(), 0u) << "round " << round;
  }
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
