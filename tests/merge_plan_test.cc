// Merge-planning tests (docs/MERGE_PLANNING.md): the MergePlanner's
// guarantees (planned passes and bytes never exceed greedy, contiguous
// in-order steps, every input consumed exactly once), byte-identity of the
// two policies across every sorting entry point (raw ExternalMergeSorter,
// NEXSORT eager + streamed, key-path sort, the sort service), exact budget
// unwind on mid-merge cancellation, DFS-aware run placement (contiguous
// extents, tail return, free-list chunk reuse, relocation), and the buffer
// pool's advisory read-ahead.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/buffer_pool.h"
#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "service/service.h"
#include "sort/external_merge_sort.h"
#include "sort/merge_plan.h"
#include "sort/sorted_stream.h"
#include "tests/test_util.h"
#include "util/cancellation.h"
#include "util/random.h"

namespace nexsort {
namespace {

using nexsort::testing::Env;

using Record = std::pair<std::string, std::string>;

// ---------------------------------------------------------- planner -----

// Replay a plan over the logical run sequence: every step must consume a
// contiguous, in-order span of the current sequence (the stability
// requirement) using only ready nodes, each node exactly once; the last
// survivor must be the plan's root.
void CheckPlanShape(const MergePlan& plan, size_t num_inputs,
                    uint64_t fan_in) {
  ASSERT_EQ(plan.num_inputs, num_inputs);
  if (num_inputs <= 1) {
    EXPECT_TRUE(plan.steps.empty());
    EXPECT_EQ(plan.passes, 0u);
    return;
  }
  std::vector<uint32_t> sequence(num_inputs);
  for (uint32_t i = 0; i < num_inputs; ++i) sequence[i] = i;
  std::vector<int> consumed(plan.node_count(), 0);
  uint32_t last_pass = 0;
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const MergeStep& step = plan.steps[s];
    ASSERT_GE(step.inputs.size(), 1u);
    ASSERT_LE(step.inputs.size(), fan_in);
    ASSERT_GE(step.pass, last_pass) << "steps not emitted pass by pass";
    last_pass = step.pass;
    // Locate the step's first input in the current sequence; the rest must
    // follow it immediately, in order (contiguity).
    auto at = std::find(sequence.begin(), sequence.end(), step.inputs[0]);
    ASSERT_NE(at, sequence.end()) << "step consumes an unavailable node";
    size_t pos = static_cast<size_t>(at - sequence.begin());
    ASSERT_LE(pos + step.inputs.size(), sequence.size());
    uint64_t expected_bytes = 0;
    for (size_t i = 0; i < step.inputs.size(); ++i) {
      ASSERT_EQ(sequence[pos + i], step.inputs[i])
          << "step " << s << " is not a contiguous in-order span";
      ASSERT_EQ(consumed[step.inputs[i]], 0);
      consumed[step.inputs[i]] = 1;
      expected_bytes += plan.node_bytes[step.inputs[i]];
    }
    EXPECT_EQ(plan.node_bytes[step.output], expected_bytes);
    EXPECT_EQ(step.final, s + 1 == plan.steps.size());
    sequence.erase(sequence.begin() + static_cast<long>(pos),
                   sequence.begin() + static_cast<long>(pos) +
                       static_cast<long>(step.inputs.size()));
    sequence.insert(sequence.begin() + static_cast<long>(pos), step.output);
  }
  ASSERT_EQ(sequence.size(), 1u);
  EXPECT_EQ(sequence.front(), plan.root());
  for (uint32_t i = 0; i < num_inputs; ++i) {
    EXPECT_EQ(consumed[i], 1) << "input run " << i << " never merged";
  }
}

std::vector<uint64_t> RandomRunBytes(uint64_t seed, size_t count) {
  Random rng(seed);
  std::vector<uint64_t> bytes;
  bytes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Skewed sizes: mostly small runs with occasional giants, the shape
    // replacement selection + graceful degeneration actually produce.
    uint64_t base = 1 + rng.Uniform(64);
    if (rng.Uniform(8) == 0) base *= 1 + rng.Uniform(100);
    bytes.push_back(base * 512);
  }
  return bytes;
}

TEST(MergePlanner, SingleRunYieldsEmptyPlan) {
  MergePlan plan = MergePlanner::Plan({4096}, 4, MergePolicy::kPlanned);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_EQ(plan.passes, 0u);
  EXPECT_EQ(plan.predicted_bytes_moved(), 0u);
}

TEST(MergePlanner, GreedyReproducesHistoricalPassStructure) {
  // 10 runs at fan-in 4: pass 0 = [0..3][4..7][8..9], pass 1 = the three
  // outputs — exactly the old left-to-right loop, including the trailing
  // narrow group.
  std::vector<uint64_t> bytes(10, 1024);
  MergePlan plan = MergePlanner::Plan(bytes, 4, MergePolicy::kGreedy);
  EXPECT_EQ(plan.passes, 2u);
  ASSERT_EQ(plan.steps.size(), 4u);
  EXPECT_EQ(plan.steps[0].inputs, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(plan.steps[1].inputs, (std::vector<uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(plan.steps[2].inputs, (std::vector<uint32_t>{8, 9}));
  EXPECT_EQ(plan.steps[3].inputs, (std::vector<uint32_t>{10, 11, 12}));
  EXPECT_EQ(plan.passes, MergePlanner::GreedyPassCount(10, 4));
  CheckPlanShape(plan, 10, 4);
}

TEST(MergePlanner, GracefulDegradationMergesOnlyTheCheapestWindow) {
  // One run over the fan-in: instead of greedy's full pass over everything
  // plus a second pass, the planner merges one two-run window (the
  // cheapest) and finishes at full fan-in.
  std::vector<uint64_t> bytes = {8192, 1024, 1024, 8192, 8192};
  MergePlan greedy = MergePlanner::Plan(bytes, 4, MergePolicy::kGreedy);
  MergePlan planned = MergePlanner::Plan(bytes, 4, MergePolicy::kPlanned);
  ASSERT_EQ(planned.steps.size(), 2u);
  EXPECT_EQ(planned.steps[0].inputs, (std::vector<uint32_t>{1, 2}));
  EXPECT_LE(planned.passes, greedy.passes);
  EXPECT_LT(planned.predicted_bytes_moved(), greedy.predicted_bytes_moved());
  CheckPlanShape(planned, 5, 4);
}

// The planner's contract, property-tested: for random skewed run sizes
// across fan-ins, the planned schedule is well-formed, never runs more
// passes than greedy, never moves more bytes, and never emits copy steps.
TEST(MergePlanner, PlannedNeverWorseThanGreedyProperty) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Random rng(seed * 977);
    size_t count = 2 + rng.Uniform(199);
    std::vector<uint64_t> bytes = RandomRunBytes(seed, count);
    for (uint64_t fan_in : {2u, 3u, 5u, 8u}) {
      MergePlan greedy = MergePlanner::Plan(bytes, fan_in,
                                            MergePolicy::kGreedy);
      MergePlan planned = MergePlanner::Plan(bytes, fan_in,
                                             MergePolicy::kPlanned);
      CheckPlanShape(greedy, count, fan_in);
      CheckPlanShape(planned, count, fan_in);
      EXPECT_EQ(greedy.passes, MergePlanner::GreedyPassCount(count, fan_in));
      EXPECT_LE(planned.passes, greedy.passes)
          << "seed=" << seed << " n=" << count << " F=" << fan_in;
      EXPECT_LE(planned.predicted_bytes_moved(),
                greedy.predicted_bytes_moved())
          << "seed=" << seed << " n=" << count << " F=" << fan_in;
      for (const MergeStep& step : planned.steps) {
        EXPECT_GE(step.inputs.size(), 2u) << "planned copy step";
      }
    }
  }
}

// ----------------------------------------------- sorter byte-identity ---

std::vector<Record> RandomRecords(uint64_t seed, size_t count) {
  Random rng(seed);
  std::vector<Record> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Heavy duplication: 25 distinct keys, so any regrouping that breaks
    // merge stability reorders values and the byte comparison catches it.
    records.emplace_back("k" + std::to_string(rng.Uniform(25)),
                         rng.Identifier(80 + rng.Uniform(120)));
  }
  return records;
}

std::vector<Record> SortWithMergePolicy(const std::vector<Record>& records,
                                        uint64_t memory_blocks,
                                        MergePolicy policy,
                                        ExtSortStats* stats = nullptr) {
  Env env;
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = memory_blocks,
                                      .merge_policy = policy});
  NEX_EXPECT_OK(sorter.init_status());
  for (const Record& record : records) {
    NEX_EXPECT_OK(sorter.Add(record.first, record.second));
  }
  NEX_EXPECT_OK(sorter.Finish());
  std::vector<Record> out;
  std::string key;
  std::string value;
  while (true) {
    auto more = sorter.Next(&key, &value);
    NEX_EXPECT_OK(more.status());
    if (!more.ok() || !more.value()) break;
    out.emplace_back(key, value);
  }
  if (stats != nullptr) *stats = sorter.stats();
  return out;
}

TEST(MergePolicyIdentity, ExternalSorterByteIdenticalAcrossFanIns) {
  for (uint64_t seed : {2u, 11u}) {
    std::vector<Record> records = RandomRecords(seed, 700);
    for (uint64_t memory_blocks : {3u, 4u, 8u}) {
      ExtSortStats greedy_stats;
      ExtSortStats planned_stats;
      std::vector<Record> greedy = SortWithMergePolicy(
          records, memory_blocks, MergePolicy::kGreedy, &greedy_stats);
      std::vector<Record> planned = SortWithMergePolicy(
          records, memory_blocks, MergePolicy::kPlanned, &planned_stats);
      ASSERT_EQ(greedy.size(), records.size());
      EXPECT_EQ(greedy, planned)
          << "seed=" << seed << " M=" << memory_blocks;
      EXPECT_LE(planned_stats.merge_passes, greedy_stats.merge_passes);
      EXPECT_LE(planned_stats.plan.actual_bytes,
                greedy_stats.plan.actual_bytes);
    }
  }
}

// The merge_plan stats block must satisfy its consumed-exactly-once
// invariant after a real multi-plan job, and the planner's size
// predictions must match what the writers actually produced.
TEST(MergePolicyIdentity, PlanStatsInvariantsHold) {
  std::vector<Record> records = RandomRecords(/*seed=*/5, 900);
  for (MergePolicy policy : {MergePolicy::kGreedy, MergePolicy::kPlanned}) {
    ExtSortStats stats;
    SortWithMergePolicy(records, /*memory_blocks=*/3, policy, &stats);
    const MergePlanStats& plan = stats.plan;
    ASSERT_EQ(plan.plans, 1u);
    EXPECT_GT(plan.steps, 0u);
    EXPECT_EQ(plan.fanin_total, plan.input_runs + plan.steps - plan.plans);
    EXPECT_EQ(plan.predicted_bytes, plan.actual_bytes);
    EXPECT_GE(plan.fanin_min, policy == MergePolicy::kPlanned ? 2u : 1u);
    EXPECT_LE(plan.fanin_max, 2u);  // fan-in is memory_blocks - 1
  }
}

std::string ManyElements(size_t count, uint64_t seed = 17) {
  Random rng(seed);
  std::string xml = "<root>";
  for (size_t i = 0; i < count; ++i) {
    xml += "<item id=\"" + std::to_string(rng.Uniform(500)) + "\"><payload>" +
           rng.Identifier(60) + "</payload></item>";
  }
  xml += "</root>";
  return xml;
}

NexSortOptions ExternalNexOptions(MergePolicy policy, bool placement = true) {
  NexSortOptions options;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  rule.numeric = true;
  options.order.AddRule(rule);
  options.sort_threshold = 2 * 1024;  // force the external subtree path
  options.merge_policy = policy;
  options.dfs_placement = placement;
  return options;
}

TEST(MergePolicyIdentity, NexSortEagerStreamedAndPlacementOff) {
  std::string xml = ManyElements(1500);
  NexSortStats greedy_stats;
  std::string greedy = nexsort::testing::NexSortString(
      xml, ExternalNexOptions(MergePolicy::kGreedy), 1024, 32, &greedy_stats);
  NexSortStats planned_stats;
  std::string planned = nexsort::testing::NexSortString(
      xml, ExternalNexOptions(MergePolicy::kPlanned), 1024, 32,
      &planned_stats);
  ASSERT_GT(greedy_stats.sorts.external_sorts, 0u)
      << "threshold failed to force external subtree sorts";
  EXPECT_EQ(planned, greedy);
  EXPECT_LE(planned_stats.sorts.merge_passes,
            greedy_stats.sorts.merge_passes);

  // Placement changes block ids only — never a byte of output.
  std::string unplaced = nexsort::testing::NexSortString(
      xml, ExternalNexOptions(MergePolicy::kPlanned, /*placement=*/false),
      1024, 32);
  EXPECT_EQ(unplaced, planned);

  // Streamed output under kPlanned matches the eager kGreedy bytes.
  Env env(1024, 32);
  NexSorter sorter(env.get(), ExternalNexOptions(MergePolicy::kPlanned));
  StringByteSource source(xml);
  auto stream_or = sorter.SortStream(&source);
  ASSERT_TRUE(stream_or.ok()) << stream_or.status().ToString();
  std::string streamed;
  std::string_view chunk;
  while (true) {
    auto more = stream_or.value()->Next(&chunk);
    NEX_ASSERT_OK(more.status());
    if (!more.value()) break;
    streamed.append(chunk);
  }
  EXPECT_EQ(streamed, greedy);
}

TEST(MergePolicyIdentity, KeyPathSorterByteIdentical) {
  std::string xml = ManyElements(1200, /*seed=*/23);
  KeyPathSortOptions options;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  rule.numeric = true;
  options.order.AddRule(rule);
  options.merge_policy = MergePolicy::kGreedy;
  std::string greedy = nexsort::testing::KeyPathSortString(xml, options);
  options.merge_policy = MergePolicy::kPlanned;
  std::string planned = nexsort::testing::KeyPathSortString(xml, options);
  EXPECT_EQ(planned, greedy);
}

TEST(MergePolicyIdentity, ServiceJobsByteIdenticalAcrossPolicies) {
  ServiceOptions options;
  options.env.block_size = 1024;
  options.env.memory_blocks = 48;
  options.executors = 2;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();

  std::string xml = ManyElements(800, /*seed=*/31);
  std::map<std::string, std::string> outputs;
  for (const char* policy : {"greedy", "planned"}) {
    JobRequest request;
    request.order_text = "item:attr(id)n";
    request.input_text = xml;
    request.return_output = true;
    request.merge_policy = policy;
    uint64_t job_id = 0;
    NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
    auto done = service.Wait(job_id);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    ASSERT_EQ(done.value().state, JobStatus::State::kDone)
        << done.value().error;
    auto output = service.TakeOutput(job_id);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    outputs[policy] = std::move(output).value();
  }
  EXPECT_EQ(outputs["greedy"], outputs["planned"]);

  // An otherwise-valid request with an unknown policy is rejected at
  // Submit, not at execution.
  JobRequest bogus;
  bogus.order_text = "item:attr(id)n";
  bogus.input_text = "<root><item id=\"1\"/></root>";
  bogus.merge_policy = "fastest";
  uint64_t id = 0;
  EXPECT_TRUE(service.Submit(std::move(bogus), &id).IsInvalidArgument());
}

// ------------------------------------------------------- cancellation ---

// Cancelling between run formation and the merge unwinds through the plan
// executor: the step's writer, its sources, and the leftover runs all
// release; the budget returns to exactly zero.
TEST(MergePlanCancellation, MidMergeCancelUnwindsBudgetExactly) {
  for (MergePolicy policy : {MergePolicy::kGreedy, MergePolicy::kPlanned}) {
    Env env;
    CancellationToken cancel;
    {
      RunStore store(env.device(), env.budget());
      ExternalMergeSorter sorter(&store, {.memory_blocks = 4,
                                          .cancel = &cancel,
                                          .merge_policy = policy});
      NEX_ASSERT_OK(sorter.init_status());
      for (const Record& record : RandomRecords(/*seed=*/9, 600)) {
        NEX_ASSERT_OK(sorter.Add(record.first, record.second));
      }
      // Finish spills the final partial buffer inline (no poll) and then
      // enters the plan executor, whose per-record poll observes the flag
      // with a live step writer and open sources — genuinely mid-merge.
      cancel.Cancel();
      Status finished = sorter.Finish();
      EXPECT_TRUE(finished.IsCancelled()) << finished.ToString();
      EXPECT_GT(sorter.stats().initial_runs, 1u);
      EXPECT_EQ(sorter.stats().plan.plans, 1u)
          << "cancellation fired before the merge phase began";
    }
    EXPECT_EQ(env.budget()->used_blocks(), 0u) << "policy leaked budget";
    EXPECT_EQ(env.budget()->release_underflows(), 0u);
  }
}

// --------------------------------------------------------- placement ----

std::string BlockOfBytes(size_t block_size, char fill) {
  return std::string(block_size, fill);
}

TEST(RunPlacement, SequentialHintYieldsContiguousAscendingBlocks) {
  Env env;
  const size_t block_size = env.device()->block_size();
  RunStore store(env.device(), env.budget());

  RunWriter writer = store.NewRun(IoCategory::kRunWrite,
                                  PlacementHint::kSequentialOutput);
  NEX_ASSERT_OK(writer.init_status());
  for (int i = 0; i < 5; ++i) {
    NEX_ASSERT_OK(writer.Append(BlockOfBytes(block_size, 'a' + i)));
  }
  RunHandle placed;
  NEX_ASSERT_OK(writer.Finish(&placed));

  std::vector<uint64_t> blocks;
  NEX_ASSERT_OK(store.SnapshotBlocks(placed, &blocks));
  ASSERT_EQ(blocks.size(), 5u);
  for (size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i], blocks[i - 1] + 1) << "placed run not contiguous";
  }

  // Freeing the run reunites its blocks with the extent's returned tail,
  // leaving one full free extent — the next placed run must reuse it
  // (contiguously) instead of growing the device.
  NEX_ASSERT_OK(store.FreeRun(placed));
  RunWriter second = store.NewRun(IoCategory::kRunWrite,
                                  PlacementHint::kSequentialOutput);
  NEX_ASSERT_OK(second.init_status());
  for (int i = 0; i < 4; ++i) {
    NEX_ASSERT_OK(second.Append(BlockOfBytes(block_size, 'z')));
  }
  RunHandle reused;
  NEX_ASSERT_OK(second.Finish(&reused));
  std::vector<uint64_t> reused_blocks;
  NEX_ASSERT_OK(store.SnapshotBlocks(reused, &reused_blocks));
  ASSERT_EQ(reused_blocks.size(), 4u);
  for (size_t i = 1; i < reused_blocks.size(); ++i) {
    EXPECT_EQ(reused_blocks[i], reused_blocks[i - 1] + 1);
  }
  for (uint64_t id : reused_blocks) {
    EXPECT_LT(id, RunStore::kPlacementExtentBlocks)
        << "second placed run grew the device instead of reusing the "
           "recycled extent";
  }
  NEX_ASSERT_OK(store.FreeRun(reused));
  EXPECT_EQ(store.live_blocks(), 0u);
}

TEST(RunPlacement, RelocateSequentialCompactsAndPreservesContents) {
  Env env;
  const size_t block_size = env.device()->block_size();
  RunStore store(env.device(), env.budget());

  // Interleave two scratch writers so each run's blocks alternate.
  RunWriter a = store.NewRun();
  RunWriter b = store.NewRun();
  NEX_ASSERT_OK(a.init_status());
  NEX_ASSERT_OK(b.init_status());
  for (int i = 0; i < 3; ++i) {
    NEX_ASSERT_OK(a.Append(BlockOfBytes(block_size, 'A' + i)));
    NEX_ASSERT_OK(b.Append(BlockOfBytes(block_size, 'x')));
  }
  RunHandle run_a;
  RunHandle run_b;
  NEX_ASSERT_OK(a.Finish(&run_a));
  NEX_ASSERT_OK(b.Finish(&run_b));

  std::vector<uint64_t> before;
  NEX_ASSERT_OK(store.SnapshotBlocks(run_a, &before));
  bool scattered = false;
  for (size_t i = 1; i < before.size(); ++i) {
    scattered |= before[i] != before[i - 1] + 1;
  }
  ASSERT_TRUE(scattered) << "interleaving failed to scatter the run";

  const uint64_t live_before = store.live_blocks();
  const uint64_t bytes_before = run_a.byte_size;
  NEX_ASSERT_OK(store.RelocateSequential(&run_a));
  EXPECT_EQ(run_a.byte_size, bytes_before);
  EXPECT_EQ(store.live_blocks(), live_before);
  std::vector<uint64_t> after;
  NEX_ASSERT_OK(store.SnapshotBlocks(run_a, &after));
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 1; i < after.size(); ++i) {
    EXPECT_EQ(after[i], after[i - 1] + 1) << "relocation left a seam";
  }

  {
    // Scoped: the reader holds a one-block reservation until destroyed.
    RunReader reader = store.OpenRun(run_a);
    NEX_ASSERT_OK(reader.init_status());
    std::string contents(run_a.byte_size, '\0');
    NEX_ASSERT_OK(reader.ReadExact(contents.data(), contents.size()));
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(contents[static_cast<size_t>(i) * block_size],
                static_cast<char>('A' + i));
    }
  }
  NEX_ASSERT_OK(store.FreeRun(run_a));
  NEX_ASSERT_OK(store.FreeRun(run_b));
  EXPECT_EQ(env.budget()->used_blocks(), 0u);
}

// Placement must not lower the physical device's sequential-read share of
// the output phase: with DFS placement on, the end-to-end sort sees at
// least the sequential fraction of the unplaced run.
TEST(RunPlacement, SequentialReadShareDoesNotRegress) {
  std::string xml = ManyElements(1500, /*seed=*/41);
  auto fraction = [&](bool placement) {
    Env env(1024, 32);
    NexSorter sorter(env.get(),
                     ExternalNexOptions(MergePolicy::kPlanned, placement));
    StringByteSource source(xml);
    std::string out;
    StringByteSink sink(&out);
    NEX_EXPECT_OK(sorter.Sort(&source, &sink));
    const IoStats& io = env.device()->stats();
    uint64_t reads = io.reads.load();
    return reads == 0 ? 0.0
                      : static_cast<double>(io.sequential_reads.load()) /
                            static_cast<double>(reads);
  };
  EXPECT_GE(fraction(true) + 1e-9, fraction(false));
}

// ------------------------------------------------- advisory read-ahead --

TEST(AdvisoryReadAhead, PrefetchesFollowAdvisedOrderAcrossSeams) {
  auto device = NewMemoryBlockDevice(256);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(16, &first));
  MemoryBudget budget(16);
  BufferPool pool(device.get(), &budget, {.frames = 8, .readahead = 3});
  NEX_ASSERT_OK(pool.init_status());

  // A deliberately non-adjacent traversal order: the id+1 detector can
  // never fire, so every prefetch observed comes from the advice.
  std::vector<uint64_t> order = {0, 5, 2, 9, 7, 12};
  pool.AdviseReadSequence(order);
  std::vector<char> buf(256);
  for (uint64_t id : order) {
    NEX_ASSERT_OK(pool.ReadBlock(id, buf.data(), IoCategory::kRunRead));
  }
  CacheStats stats = pool.stats();
  EXPECT_GT(stats.prefetches, 0u) << "advice triggered no prefetch";
  EXPECT_GT(stats.hits, 0u) << "advised prefetches never became hits";

  // Cleared advice: the same scattered order triggers nothing further.
  pool.ClearReadAdvice();
  const uint64_t prefetches_before = stats.prefetches;
  for (uint64_t id : {1u, 6u, 3u, 10u}) {
    NEX_ASSERT_OK(pool.ReadBlock(id, buf.data(), IoCategory::kRunRead));
  }
  EXPECT_EQ(pool.stats().prefetches, prefetches_before)
      << "stale advice outlived ClearReadAdvice";
}

TEST(AdvisoryReadAhead, StaleIdsAndDisabledReadaheadAreHarmless) {
  auto device = NewMemoryBlockDevice(256);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(4, &first));
  MemoryBudget budget(16);
  {
    // readahead == 0: advice must be a no-op, not a crash.
    BufferPool pool(device.get(), &budget, {.frames = 4});
    NEX_ASSERT_OK(pool.init_status());
    pool.AdviseReadSequence({0, 1, 2});
    std::vector<char> buf(256);
    NEX_ASSERT_OK(pool.ReadBlock(0, buf.data(), IoCategory::kRunRead));
    EXPECT_EQ(pool.stats().prefetches, 0u);
  }
  {
    // Advice naming blocks past the device's end skips them best-effort.
    BufferPool pool(device.get(), &budget, {.frames = 4, .readahead = 2});
    NEX_ASSERT_OK(pool.init_status());
    pool.AdviseReadSequence({0, 999, 1});
    std::vector<char> buf(256);
    NEX_ASSERT_OK(pool.ReadBlock(0, buf.data(), IoCategory::kRunRead));
    NEX_ASSERT_OK(pool.ReadBlock(1, buf.data(), IoCategory::kRunRead));
    EXPECT_GE(pool.stats().hits, 1u);
  }
}

}  // namespace
}  // namespace nexsort
