// Robustness sweeps: randomly mutated inputs must never crash or corrupt —
// every run ends in either a clean Status error or a successful sort whose
// output passes independent verification.
#include <gtest/gtest.h>

#include "core/sorted_check.h"
#include "nested/json.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(Robustness, MutatedXmlNeverCrashesTheSorter) {
  RandomTreeGenerator generator(4, 5, {.seed = 700, .element_bytes = 40});
  auto base = generator.GenerateString();
  ASSERT_TRUE(base.ok());

  Random rng(701);
  int successes = 0;
  int failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string xml = *base;
    // 1-4 random byte mutations: overwrite, delete, or insert.
    int mutations = 1 + rng.Uniform(4);
    for (int m = 0; m < mutations && !xml.empty(); ++m) {
      size_t at = rng.Uniform(xml.size());
      switch (rng.Uniform(3)) {
        case 0: xml[at] = static_cast<char>(rng.Uniform(256)); break;
        case 1: xml.erase(at, 1); break;
        case 2: xml.insert(at, 1, static_cast<char>(rng.Uniform(256))); break;
      }
    }

    Env env(512, 10);
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", true);
    NexSorter sorter(env.get(), options);
    StringByteSource source(xml);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    if (st.ok()) {
      ++successes;
      // If the mutation left well-formed XML, the output must be sorted.
      auto report = CheckSorted(out, options.order);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->sorted) << report->violation;
    } else {
      ++failures;
      EXPECT_TRUE(st.IsParseError() || st.IsCorruption())
          << "trial " << trial << ": " << st.ToString();
    }
    // Budget hygiene regardless of outcome.
    EXPECT_EQ(env.budget()->used_blocks(), 0u);
  }
  // Sanity: the sweep exercised both paths.
  EXPECT_GT(failures, 10);
  EXPECT_GT(successes + failures, 0);
}

TEST(Robustness, MutatedJsonNeverCrashesTheSorter) {
  const std::string base =
      "{\"users\":[{\"id\":3,\"name\":\"ann\"},{\"id\":1,\"name\":\"bob\"}],"
      "\"total\":2,\"tags\":[\"x\",\"y\"],\"meta\":{\"v\":1.5,\"ok\":true}}";
  Random rng(702);
  int failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string json = base;
    size_t at = rng.Uniform(json.size());
    switch (rng.Uniform(3)) {
      case 0: json[at] = static_cast<char>(rng.Uniform(128)); break;
      case 1: json.erase(at, 1); break;
      case 2: json.insert(at, 1, static_cast<char>(rng.Uniform(128))); break;
    }
    Env env(512, 12);
    JsonSortOptions options;
    options.sort_arrays_by = "id";
    options.numeric_array_keys = true;
    JsonSorter sorter(env.get(), options);
    StringByteSource source(json);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    if (!st.ok()) ++failures;
    EXPECT_EQ(env.budget()->used_blocks(), 0u);
  }
  EXPECT_GT(failures, 20);
}

TEST(Robustness, PathologicalDocumentShapes) {
  NexSortOptions base_options;
  base_options.order = OrderSpec::ByAttribute("id", true);

  // A 3000-deep chain: stacks must page without recursion blowups.
  {
    std::string xml;
    const int depth = 3000;
    for (int i = 0; i < depth; ++i) {
      xml += "<c id=\"" + std::to_string(depth - i) + "\">";
    }
    for (int i = 0; i < depth; ++i) xml += "</c>";
    NexSortOptions options = base_options;
    std::string sorted = NexSortString(xml, options, 512, 10);
    EXPECT_EQ(sorted, OracleSort(xml, base_options.order));
  }

  // A 5000-wide star with tiny memory.
  {
    std::string xml = "<r>";
    Random rng(703);
    for (int i = 0; i < 5000; ++i) {
      xml += "<x id=\"" + std::to_string(rng.Uniform(100000)) + "\"/>";
    }
    xml += "</r>";
    NexSortOptions options = base_options;
    std::string sorted = NexSortString(xml, options, 512, 8);
    EXPECT_EQ(sorted, OracleSort(xml, base_options.order));
  }

  // Attribute values hostile to escaping and to the key encodings.
  {
    const std::string xml =
        "<r><a id=\"&lt;&amp;&quot;\"/><a id=\"\"/><a id=\"  spaces  \"/>"
        "<a id=\"&#9;tab\"/></r>";
    NexSortOptions options = base_options;
    options.order = OrderSpec::ByAttribute("id");  // lexicographic
    std::string sorted = NexSortString(xml, options);
    EXPECT_EQ(sorted, OracleSort(xml, options.order));
  }
}

TEST(Robustness, ManyDistinctTagNamesStressTheDictionary) {
  std::string xml = "<r>";
  Random rng(704);
  for (int i = 0; i < 2000; ++i) {
    std::string tag = "t" + std::to_string(i);
    xml += "<" + tag + " id=\"" + std::to_string(rng.Uniform(100)) + "\"></" +
           tag + ">";
  }
  xml += "</r>";
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  std::string sorted = NexSortString(xml, options, 512, 10);
  EXPECT_EQ(sorted, OracleSort(xml, options.order));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
