// SortEnv: option validation, stack composition (layers, cache, worker
// pool), session semantics, and the headline property the env layer
// exists for — several jobs sharing one budget/device/pool with exact
// accounting and byte-identical results.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "env/sort_env.h"
#include "obs/json_writer.h"
#include "obs/telemetry_hub.h"
#include "obs/tracer.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(SortEnvCreate, RejectsInvalidOptions) {
  {
    SortEnvOptions options;
    options.block_size = 0;
    EXPECT_FALSE(SortEnv::Create(std::move(options)).ok());
  }
  {
    SortEnvOptions options;
    options.memory_blocks = 0;
    EXPECT_FALSE(SortEnv::Create(std::move(options)).ok());
  }
  {
    // Readahead is a cache feature; without frames it is a dead knob the
    // caller probably mis-set.
    SortEnvOptions options;
    options.cache = {.frames = 0, .readahead = 4};
    EXPECT_FALSE(SortEnv::Create(std::move(options)).ok());
  }
  {
    // Cache frames are charged against the budget for the env's lifetime;
    // a cache as large as M would leave the sorts nothing to run on.
    SortEnvOptions options;
    options.memory_blocks = 16;
    options.cache = {.frames = 16, .readahead = 0};
    EXPECT_FALSE(SortEnv::Create(std::move(options)).ok());
  }
}

TEST(SortEnvCreate, DefaultStackIsBareMemoryDevice) {
  auto env_or = SortEnvBuilder().BlockSize(1024).MemoryBlocks(32).Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  EXPECT_EQ(env->block_size(), 1024u);
  EXPECT_EQ(env->device(), env->physical_device());
  EXPECT_EQ(env->physical_device(), env->base_device());
  EXPECT_EQ(env->layer_device(0), nullptr);
  EXPECT_EQ(env->buffer_pool(), nullptr);
  EXPECT_EQ(env->worker_pool(), nullptr);
  EXPECT_EQ(env->budget()->total_blocks(), 32u);
  EXPECT_EQ(env->budget()->used_blocks(), 0u);
}

TEST(SortEnvCreate, ComposesLayersCacheAndWorkers) {
  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(64)
                    .Throttle({.access_latency_us = 0,
                               .throughput_mb_per_s = 100000})
                    .FaultLayer()
                    .Cache(8, /*readahead=*/2)
                    .Threads(2)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  // Stack shape: base -> throttle -> fault -> cache; device() is the
  // cache, physical_device() the topmost wrapper.
  EXPECT_NE(env->device(), env->physical_device());
  EXPECT_EQ(env->layer_device(0 + 1), env->physical_device());
  EXPECT_NE(env->layer_device(0), env->base_device());
  EXPECT_EQ(env->layer_device(2), nullptr);
  ASSERT_NE(env->buffer_pool(), nullptr);
  ASSERT_NE(env->worker_pool(), nullptr);

  // The cache's 8 frames are charged to the budget up front.
  EXPECT_EQ(env->budget()->used_blocks(), 8u);
}

TEST(SortEnvCreate, FaultLayerArmsFailures) {
  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(16)
                    .FaultLayer()
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  BlockDevice* fault = env->layer_device(0);
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(fault, env->physical_device());

  uint64_t first = 0;
  NEX_ASSERT_OK(env->device()->Allocate(1, &first));
  std::vector<char> block(env->block_size(), 'x');
  NEX_ASSERT_OK(env->device()->Write(first, block.data()));
  fault->FailNextOps(1);
  EXPECT_FALSE(env->device()->Write(first, block.data()).ok());
  NEX_EXPECT_OK(env->device()->Write(first, block.data()));
}

TEST(SortEnvDescribe, JsonCarriesTheComposition) {
  auto env_or = SortEnvBuilder()
                    .BlockSize(2048)
                    .MemoryBlocks(64)
                    .Throttle()
                    .FaultLayer()
                    .Cache(8, /*readahead=*/2)
                    .Threads(3)
                    .PrefetchDepth(2)
                    .SortMemoryBlocks(4)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  JsonWriter json;
  (*env_or)->DescribeJson(&json);
  std::string text = std::move(json).Take();
  EXPECT_NE(text.find("\"block_size\":2048"), std::string::npos) << text;
  EXPECT_NE(text.find("\"memory_blocks\":64"), std::string::npos) << text;
  EXPECT_NE(text.find("\"device\":\"memory\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"layers\":[\"throttle\",\"fault\"]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"cache_frames\":8"), std::string::npos) << text;
  EXPECT_NE(text.find("\"readahead\":2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"threads\":3"), std::string::npos) << text;
  EXPECT_NE(text.find("\"prefetch_depth\":2"), std::string::npos) << text;
  EXPECT_NE(text.find("\"sort_memory_blocks\":4"), std::string::npos)
      << text;
}

TEST(SortEnvSession, OwnsJobStateAndInheritsTracer) {
  Tracer tracer;
  SortEnvOptions options;
  options.block_size = 1024;
  options.memory_blocks = 32;
  options.tracer = &tracer;
  auto env_or = SortEnv::Create(std::move(options));
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  SortEnv::Session a = env->NewSession();
  SortEnv::Session b = env->NewSession();
  EXPECT_EQ(a.tracer(), &tracer);
  EXPECT_EQ(b.tracer(), &tracer);
  // Job state is per session; the stack is shared. Each session fronts
  // the shared device with its own accounting wrapper (the basis of
  // per-session attribution), so the device pointers differ while the
  // budget stays shared.
  EXPECT_NE(a.run_store(), b.run_store());
  ASSERT_NE(a.device(), nullptr);
  ASSERT_NE(b.device(), nullptr);
  EXPECT_NE(a.device(), b.device());
  EXPECT_NE(a.device(), env->device());
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.budget(), b.budget());
  // Serial env: no parallel context.
  EXPECT_EQ(a.parallel(), nullptr);

  // Concurrent jobs must not share the single-threaded tracer; a session
  // can drop (or swap) its sink without touching the env's.
  b.set_tracer(nullptr);
  EXPECT_EQ(b.tracer(), nullptr);
  EXPECT_EQ(a.tracer(), &tracer);
  EXPECT_EQ(env->tracer(), &tracer);
}

// The reason the env layer exists: N jobs against one env share the
// budget, device, cache, and worker pool with exact accounting, and
// concurrency never changes bytes.
TEST(SortEnvSharedConcurrency, TwoJobsMatchSerialWithExactAccounting) {
  RandomTreeGenerator generator(/*height=*/5, /*max_fanout=*/6,
                                {.seed = 33, .element_bytes = 80});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  auto sort_one = [&](SortEnv* env) {
    NexSortOptions options;
    options.order = spec;
    NexSorter sorter(env, options);
    StringByteSource source(*xml);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  };

  // Serial reference in its own env.
  std::string expected;
  {
    auto env_or = SortEnvBuilder().BlockSize(512).MemoryBlocks(96).Build();
    ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
    expected = sort_one(env_or->get());
  }
  ASSERT_FALSE(expected.empty());

  // Two concurrent jobs in ONE env: a pinned per-sort allowance gives both
  // jobs identical deterministic grants out of the shared budget.
  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(96)
                    .SortMemoryBlocks(8)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  std::string out_a, out_b;
  {
    std::thread job_a([&] { out_a = sort_one(env.get()); });
    std::thread job_b([&] { out_b = sort_one(env.get()); });
    job_a.join();
    job_b.join();
  }
  EXPECT_EQ(out_a, expected);
  EXPECT_EQ(out_b, expected);

  // Exact accounting: everything both jobs acquired was returned, nothing
  // was returned twice, and the shared cap held throughout.
  EXPECT_EQ(env->budget()->used_blocks(), 0u);
  EXPECT_EQ(env->budget()->release_underflows(), 0u);
  EXPECT_LE(env->budget()->peak_blocks(), 96u);
  EXPECT_GT(env->budget()->peak_blocks(), 0u);
}

TEST(SortEnvSharedConcurrency, CachedEnvLeaksNoFrames) {
  RandomTreeGenerator generator(/*height=*/4, /*max_fanout=*/6,
                                {.seed = 34, .element_bytes = 80});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(96)
                    .SortMemoryBlocks(8)
                    .Cache(16)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  auto sort_one = [&](std::string* out) {
    NexSortOptions options;
    options.order = spec;
    NexSorter sorter(env.get(), options);
    StringByteSource source(*xml);
    StringByteSink sink(out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
  };

  std::string out_a, out_b;
  {
    std::thread job_a([&] { sort_one(&out_a); });
    std::thread job_b([&] { sort_one(&out_b); });
    job_a.join();
    job_b.join();
  }
  EXPECT_EQ(out_a, out_b);
  EXPECT_FALSE(out_a.empty());

  // No pinned frames survive the jobs, and the budget holds exactly the
  // cache's resident frames — nothing leaked, nothing double-released.
  ASSERT_NE(env->buffer_pool(), nullptr);
  EXPECT_EQ(env->buffer_pool()->pinned_frames(), 0u);
  NEX_EXPECT_OK(env->Flush());
  EXPECT_EQ(env->budget()->used_blocks(), 16u);
  EXPECT_EQ(env->budget()->release_underflows(), 0u);
}

// Per-session attribution: every session fronts the shared stack with its
// own accounting wrapper, so summing session I/O across all sessions must
// reconstruct the shared device's totals *exactly* — reads, writes, and
// every category. (Sequential subsets and modeled seconds are per-device
// properties of the shared layer and are deliberately not compared: they
// depend on how the two sessions' accesses interleaved.)
TEST(SortEnvSessionStats, AttributionSumsMatchEnvTotalsExactly) {
  RandomTreeGenerator generator(/*height=*/5, /*max_fanout=*/6,
                                {.seed = 35, .element_bytes = 80});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(96)
                    .SortMemoryBlocks(8)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();

  auto sort_one = [&](std::string* out) {
    NexSortOptions options;
    options.order = spec;
    NexSorter sorter(env.get(), options);
    StringByteSource source(*xml);
    StringByteSink sink(out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
  };

  std::string out_a, out_b;
  {
    std::thread job_a([&] { sort_one(&out_a); });
    std::thread job_b([&] { sort_one(&out_b); });
    job_a.join();
    job_b.join();
  }
  EXPECT_EQ(out_a, out_b);
  ASSERT_FALSE(out_a.empty());

  std::vector<SessionStats> sessions = env->session_stats();
  ASSERT_EQ(sessions.size(), 2u);
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t category_reads[kNumIoCategories] = {};
  uint64_t category_writes[kNumIoCategories] = {};
  for (const SessionStats& session : sessions) {
    EXPECT_FALSE(session.active);
    EXPECT_GE(session.wall_seconds, 0.0);
    EXPECT_GE(session.start_seconds, 0.0);
    EXPECT_GT(session.io.total(), 0u);
    reads += session.io.reads.load(std::memory_order_relaxed);
    writes += session.io.writes.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumIoCategories; ++i) {
      category_reads[i] +=
          session.io.category_reads[i].load(std::memory_order_relaxed);
      category_writes[i] +=
          session.io.category_writes[i].load(std::memory_order_relaxed);
    }
  }
  EXPECT_NE(sessions[0].id, sessions[1].id);

  const IoStats& shared = env->device()->stats();
  EXPECT_EQ(reads, shared.reads.load(std::memory_order_relaxed));
  EXPECT_EQ(writes, shared.writes.load(std::memory_order_relaxed));
  for (int i = 0; i < kNumIoCategories; ++i) {
    EXPECT_EQ(category_reads[i],
              shared.category_reads[i].load(std::memory_order_relaxed))
        << IoCategoryName(static_cast<IoCategory>(i));
    EXPECT_EQ(category_writes[i],
              shared.category_writes[i].load(std::memory_order_relaxed))
        << IoCategoryName(static_cast<IoCategory>(i));
  }
}

// The sampler is pure observation: enabling it never changes sorted bytes,
// and by the time the env stops it has published at least the final sample
// with the headline gauges.
TEST(SortEnvTelemetry, SamplerIsObservationOnly) {
  RandomTreeGenerator generator(/*height=*/4, /*max_fanout=*/6,
                                {.seed = 36, .element_bytes = 80});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  auto sort_in = [&](SortEnv* env, std::string* out) {
    NexSortOptions options;
    options.order = spec;
    NexSorter sorter(env, options);
    StringByteSource source(*xml);
    StringByteSink sink(out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
  };

  std::string plain;
  {
    auto env_or = SortEnvBuilder().BlockSize(512).MemoryBlocks(96).Build();
    ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
    EXPECT_EQ((*env_or)->telemetry(), nullptr);
    sort_in(env_or->get(), &plain);
  }
  ASSERT_FALSE(plain.empty());

  std::string sampled;
  auto env_or = SortEnvBuilder()
                    .BlockSize(512)
                    .MemoryBlocks(96)
                    .SampleIntervalMs(1)
                    .Build();
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  std::unique_ptr<SortEnv> env = std::move(env_or).value();
  ASSERT_NE(env->telemetry(), nullptr);
  sort_in(env.get(), &sampled);
  EXPECT_EQ(sampled, plain);

  env->telemetry()->StopSampler();
  std::vector<TelemetrySample> samples = env->telemetry()->samples();
  ASSERT_GE(samples.size(), 1u);
  const TelemetrySample& last = samples.back();
  EXPECT_EQ(last.GaugeOr("budget_total_blocks", -1.0), 96.0);
  EXPECT_GT(last.GaugeOr("io_logical_total", 0.0), 0.0);
  EXPECT_GT(last.GaugeOr("io_physical_total", 0.0), 0.0);
  EXPECT_EQ(last.GaugeOr("sessions_active", -1.0), 0.0);
  // No cache configured, zero cache accesses: the hit-rate gauge must be
  // absent rather than a fake 0 or 100.
  EXPECT_EQ(last.GaugeOr("cache_hit_rate_pct", -1.0), -1.0);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_seconds, samples[i - 1].t_seconds);
  }
}

// tsan smoke: a 1 ms sampler racing live parallel sorts plus rapid env
// teardown (which stops the sampler) must be free of data races. The
// assertions are minimal on purpose — the value of this test is running
// it under ThreadSanitizer.
TEST(SortEnvTelemetry, SamplerStartStopRaceSmoke) {
  RandomTreeGenerator generator(/*height=*/4, /*max_fanout=*/5,
                                {.seed = 37, .element_bytes = 64});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  for (int round = 0; round < 4; ++round) {
    auto env_or = SortEnvBuilder()
                      .BlockSize(512)
                      .MemoryBlocks(96)
                      .SortMemoryBlocks(8)
                      .Cache(16)
                      .Threads(2)
                      .SampleIntervalMs(1)
                      .Build();
    ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
    std::unique_ptr<SortEnv> env = std::move(env_or).value();

    auto sort_one = [&](std::string* out) {
      NexSortOptions options;
      options.order = spec;
      NexSorter sorter(env.get(), options);
      StringByteSource source(*xml);
      StringByteSink sink(out);
      Status st = sorter.Sort(&source, &sink);
      EXPECT_TRUE(st.ok()) << st.ToString();
    };

    std::string out_a, out_b;
    {
      std::thread job_a([&] { sort_one(&out_a); });
      std::thread job_b([&] { sort_one(&out_b); });
      job_a.join();
      job_b.join();
    }
    EXPECT_EQ(out_a, out_b);
    // env destruction joins the sampler while its last probe may still be
    // reading gauges — exactly the shutdown race this smoke exercises.
  }
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
