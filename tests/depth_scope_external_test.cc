// Depth-limit and scope coverage on the paths that only trigger under
// memory pressure: external subtree sorts and the key-path baseline.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

struct Doc {
  std::string xml;
};

Doc MakeDoc(uint64_t seed) {
  // Geometry chosen so that at 8 blocks of 512 bytes, mid-level subtrees
  // exceed both the threshold and the internal sort capacity, forcing the
  // streaming key-path external path.
  RandomTreeGenerator generator(5, 8, {.seed = seed, .element_bytes = 150});
  auto xml = generator.GenerateString();
  EXPECT_TRUE(xml.ok());
  return {xml.ok() ? std::move(xml).value() : std::string()};
}

TEST(DepthLimitExternal, ExternalSubtreeSortsHonourDepthLimit) {
  Doc doc = MakeDoc(900);
  for (int depth_limit : {1, 2, 3}) {
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    options.depth_limit = depth_limit;
    NexSortStats stats;
    // 8 blocks of 512B: root-region sorts must go external.
    std::string sorted = NexSortString(doc.xml, options, /*block_size=*/512,
                                       /*memory_blocks=*/8, &stats);
    EXPECT_GT(stats.sorts.external_sorts, 0u)
        << "geometry did not exercise the external path";
    EXPECT_EQ(sorted, OracleSort(doc.xml, options.order, depth_limit))
        << "depth limit " << depth_limit;
  }
}

TEST(DepthLimitExternal, KeyPathBaselineHonoursDepthLimit) {
  Doc doc = MakeDoc(901);
  for (int depth_limit : {1, 2, 3}) {
    KeyPathSortOptions options;
    options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    options.depth_limit = depth_limit;
    std::string sorted = KeyPathSortString(doc.xml, options,
                                           /*block_size=*/512,
                                           /*memory_blocks=*/6);
    EXPECT_EQ(sorted, OracleSort(doc.xml, options.order, depth_limit))
        << "depth limit " << depth_limit;
  }
}

TEST(DepthLimitExternal, DepthLimitedBelowDepthIdenticalToInputOrder) {
  // Under a depth limit, subtrees rooted below the limit must be
  // byte-identical to their input serialization (they are moved as atomic
  // units, never internally reordered).
  Doc doc = MakeDoc(902);
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.depth_limit = 1;
  std::string sorted = NexSortString(doc.xml, options, 512, 8);

  // Every level-2 element's full subtree substring from the input must
  // appear verbatim in the output. Extract subtrees textually: generated
  // docs have deterministic tags n2...; find balanced <n2 ...>...</n2>.
  size_t found = 0;
  size_t at = 0;
  while ((at = doc.xml.find("<n2 ", at)) != std::string::npos) {
    size_t end = doc.xml.find("</n2>", at);
    // Nested n2 cannot occur (tags are per-level), so this is balanced.
    ASSERT_NE(end, std::string::npos);
    std::string subtree = doc.xml.substr(at, end + 5 - at);
    EXPECT_NE(sorted.find(subtree), std::string::npos)
        << "subtree at " << at << " was internally reordered";
    ++found;
    at = end;
  }
  EXPECT_GT(found, 0u);
}

TEST(ScopedExternal, ScopedSortMatchesReferenceUnderMemoryPressure) {
  Doc doc = MakeDoc(903);
  std::vector<std::string> scope = {"n1", "n3"};
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  auto reference = SortXmlStringInMemory(doc.xml, spec, 0, &scope);
  ASSERT_TRUE(reference.ok());

  NexSortOptions options;
  options.order = spec;
  options.sort_scope_tags = scope;
  NexSortStats stats;
  std::string sorted = NexSortString(doc.xml, options, /*block_size=*/512,
                                     /*memory_blocks=*/8, &stats);
  EXPECT_GT(stats.sorts.external_sorts, 0u);
  EXPECT_EQ(sorted, *reference);
}

TEST(ScopedExternal, ScopeComposesWithDepthLimit) {
  Doc doc = MakeDoc(904);
  std::vector<std::string> scope = {"n1", "n2"};
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  auto reference = SortXmlStringInMemory(doc.xml, spec, /*depth_limit=*/2,
                                         &scope);
  ASSERT_TRUE(reference.ok());

  NexSortOptions options;
  options.order = spec;
  options.sort_scope_tags = scope;
  options.depth_limit = 2;
  EXPECT_EQ(NexSortString(doc.xml, options, 512, 16), *reference);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
