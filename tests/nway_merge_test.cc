// N-way structural merge: the archiving use case (merge many sorted
// versions in one simultaneous pass).
#include <gtest/gtest.h>

#include "core/sorted_check.h"
#include "merge/structural_merge.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

std::string Sort(std::string_view xml, const OrderSpec& spec) {
  NexSortOptions options;
  options.order = spec;
  return NexSortString(xml, options);
}

Status MergeMany(const std::vector<std::string>& docs, const OrderSpec& spec,
                 std::string* out, MergeStats* stats = nullptr) {
  std::vector<std::unique_ptr<StringByteSource>> owned;
  std::vector<ByteSource*> sources;
  for (const std::string& doc : docs) {
    owned.push_back(std::make_unique<StringByteSource>(doc));
    sources.push_back(owned.back().get());
  }
  MergeOptions options;
  options.order = spec;
  StringByteSink sink(out);
  return StructuralMergeMany(sources, &sink, options, stats);
}

TEST(NWayMerge, ThreeWayBasic) {
  OrderSpec spec = OrderSpec::ByAttribute("k");
  std::vector<std::string> docs = {
      Sort("<r><x k=\"b\" from=\"1\"/></r>", spec),
      Sort("<r><x k=\"a\" from=\"2\"/></r>", spec),
      Sort("<r><x k=\"c\" from=\"3\"/><x k=\"a\" extra=\"e\"/></r>", spec),
  };
  std::string merged;
  MergeStats stats;
  NEX_ASSERT_OK(MergeMany(docs, spec, &merged, &stats));
  EXPECT_EQ(merged,
            "<r><x k=\"a\" from=\"2\" extra=\"e\"></x>"
            "<x k=\"b\" from=\"1\"></x>"
            "<x k=\"c\" from=\"3\"></x></r>");
  EXPECT_EQ(stats.matched_elements, 1u);  // the k="a" pair
  EXPECT_EQ(stats.left_only, 2u);         // b and c
}

TEST(NWayMerge, SingleInputIsIdentity) {
  OrderSpec spec = OrderSpec::ByAttribute("k");
  std::string doc = Sort("<r><x k=\"1\">text</x><x k=\"2\"/></r>", spec);
  std::string merged;
  NEX_ASSERT_OK(MergeMany({doc}, spec, &merged));
  EXPECT_EQ(merged, doc);
}

TEST(NWayMerge, TwoWayAgreesWithPairwiseMerger) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  nexsort::Random rng(42);
  std::string a = "<r>";
  std::string b = "<r>";
  for (int i = 0; i < 40; ++i) {
    std::string element = "<item id=\"" + std::to_string(rng.Uniform(60)) +
                          "\" src=\"" + (i % 2 ? "a" : "b") + "\"></item>";
    (rng.OneIn(2) ? a : b) += element;
  }
  a += "</r>";
  b += "</r>";
  std::string a_sorted = Sort(a, spec);
  std::string b_sorted = Sort(b, spec);

  std::string pairwise;
  {
    MergeOptions options;
    options.order = spec;
    StringByteSource left(a_sorted);
    StringByteSource right(b_sorted);
    StringByteSink sink(&pairwise);
    NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
  }
  std::string nway;
  NEX_ASSERT_OK(MergeMany({a_sorted, b_sorted}, spec, &nway));
  EXPECT_EQ(nway, pairwise);
}

TEST(NWayMerge, ManyWayEqualsIteratedTwoWay) {
  // Merging 5 documents at once == folding them pairwise (for unique keys
  // and kPreferLeft text, both equal the sorted union).
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  nexsort::Random rng(77);
  std::vector<std::string> docs;
  std::string union_xml = "<r>";
  for (int d = 0; d < 5; ++d) {
    std::string doc = "<r>";
    for (int i = 0; i < 12; ++i) {
      int id = d * 100 + i;
      std::string element = "<item id=\"" + std::to_string(id) + "\"><v>" +
                            rng.Identifier(6) + "</v></item>";
      doc += element;
      union_xml += element;
    }
    doc += "</r>";
    docs.push_back(Sort(doc, spec));
  }
  union_xml += "</r>";

  std::string nway;
  NEX_ASSERT_OK(MergeMany(docs, spec, &nway));
  EXPECT_EQ(nway, OracleSort(union_xml, spec));

  auto report = CheckSorted(nway, spec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->sorted);
}

TEST(NWayMerge, DeepVersionedArchive) {
  // Three "versions" of a nested document; later versions add elements and
  // attributes. The archive carries the union, leftmost (oldest input
  // listed first) attribute values winning.
  OrderSpec spec = OrderSpec::ByAttribute("name");
  std::vector<std::string> versions = {
      Sort("<cfg><svc name=\"db\"><opt name=\"port\" v=\"5432\"/></svc>"
           "</cfg>",
           spec),
      Sort("<cfg><svc name=\"db\"><opt name=\"port\" v=\"9999\"/>"
           "<opt name=\"tls\" v=\"on\"/></svc></cfg>",
           spec),
      Sort("<cfg><svc name=\"cache\"><opt name=\"size\" v=\"1G\"/></svc>"
           "</cfg>",
           spec),
  };
  std::string merged;
  NEX_ASSERT_OK(MergeMany(versions, spec, &merged));
  EXPECT_EQ(merged,
            "<cfg>"
            "<svc name=\"cache\"><opt name=\"size\" v=\"1G\"></opt></svc>"
            "<svc name=\"db\">"
            "<opt name=\"port\" v=\"5432\"></opt>"
            "<opt name=\"tls\" v=\"on\"></opt>"
            "</svc>"
            "</cfg>");
}

TEST(NWayMerge, RejectsUpdateOpsAndEmptyInput) {
  MergeOptions options;
  options.order = OrderSpec::ByAttribute("k");
  options.apply_update_ops = true;
  StringByteSource a("<r/>");
  std::vector<ByteSource*> one = {&a};
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(StructuralMergeMany(one, &sink, options).IsNotSupported());

  MergeOptions plain;
  plain.order = OrderSpec::ByAttribute("k");
  EXPECT_TRUE(
      StructuralMergeMany({}, &sink, plain).IsInvalidArgument());
}

TEST(NWayMerge, MismatchedRootsRejected) {
  MergeOptions options;
  options.order = OrderSpec::ByAttribute("k");
  StringByteSource a("<r/>");
  StringByteSource b("<other/>");
  std::vector<ByteSource*> inputs = {&a, &b};
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(
      StructuralMergeMany(inputs, &sink, options).IsInvalidArgument());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
