// Block-size parameterized sweep: the whole pipeline must be correct at
// any block granularity, from pathological 64-byte blocks up.
#include <gtest/gtest.h>

#include "core/sorted_check.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

class BlockSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockSizeSweep, NexSortMatchesOracle) {
  size_t block_size = GetParam();
  RandomTreeGenerator generator(4, 6, {.seed = 1234, .element_bytes = 70});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted =
      NexSortString(*xml, options, block_size, /*memory_blocks=*/16);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

TEST_P(BlockSizeSweep, KeyPathBaselineMatchesOracle) {
  size_t block_size = GetParam();
  RandomTreeGenerator generator(4, 6, {.seed = 1235, .element_bytes = 70});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted =
      KeyPathSortString(*xml, options, block_size, /*memory_blocks=*/8);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

TEST_P(BlockSizeSweep, GracefulDegenerationMatchesOracle) {
  size_t block_size = GetParam();
  ShapeGenerator generator({400}, {.seed = 1236, .element_bytes = 70});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.graceful_degeneration = true;
  std::string sorted =
      NexSortString(*xml, options, block_size, /*memory_blocks=*/12);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace testing
}  // namespace nexsort
