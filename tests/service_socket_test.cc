// End-to-end `nexsortd-wire-v1` over a real unix-domain socket: an
// in-process SortService wrapped by SocketServer, driven through
// ServiceClient exactly as nexsortctl drives the daemon. The headline
// assertion: N concurrent sort jobs through the service come back
// byte-identical to direct solo NexSorter runs.
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/nexsort.h"
#include "core/order_spec_parse.h"
#include "env/sort_env.h"
#include "extmem/stream.h"
#include "obs/json_writer.h"
#include "service/client.h"
#include "service/server.h"
#include "service/service.h"
#include "tests/test_util.h"

namespace nexsort {
namespace {

using ::nexsort::testing::Env;

class ServiceSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ =
        (std::filesystem::temp_directory_path() /
         ("nexsortd_test_" + std::to_string(::getpid()) + ".sock"))
            .string();
    ServiceOptions options;
    options.env.block_size = 1024;
    options.env.memory_blocks = 72;
    options.executors = 3;
    auto service = SortService::Create(std::move(options));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
    auto server = SocketServer::Start(service_.get(), socket_path_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    server_.reset();
    service_.reset();
    EXPECT_FALSE(std::filesystem::exists(socket_path_))
        << "Stop() must remove the socket file";
  }

  StatusOr<JsonValue> Call(std::string_view request) {
    auto client = ServiceClient::Connect(socket_path_);
    if (!client.ok()) return client.status();
    return client.value()->Call(request);
  }

  std::string socket_path_;
  std::unique_ptr<SortService> service_;
  std::unique_ptr<SocketServer> server_;
};

std::string ShuffledDoc(int count, int stride) {
  // A deterministic permutation: ids hop by `stride` modulo count, so
  // every document is distinct and none arrives sorted.
  std::string xml = "<list>";
  for (int i = 0; i < count; ++i) {
    int id = (i * stride + 7) % count;
    xml += "<item id=\"" + std::to_string(id) +
           "\"><v>payload-" + std::to_string(id) + "</v></item>";
  }
  xml += "</list>";
  return xml;
}

std::string SubmitRequest(const std::string& xml, const std::string& tenant,
                          bool wait, bool return_output) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("op");
  writer.String("submit");
  writer.Key("kind");
  writer.String("sort");
  writer.Key("tenant");
  writer.String(tenant);
  writer.Key("order");
  writer.String("item:attr(id)n");
  writer.Key("input_text");
  writer.String(xml);
  if (wait) {
    writer.Key("wait");
    writer.Bool(true);
  }
  if (return_output) {
    writer.Key("return_output");
    writer.Bool(true);
  }
  writer.EndObject();
  return std::move(writer).Take();
}

TEST_F(ServiceSocketTest, PingReportsSchema) {
  auto response = Call(R"({"op":"ping"})");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().GetBool("ok"));
  EXPECT_EQ(response.value().GetString("schema"), kWireSchema);
}

TEST_F(ServiceSocketTest, MalformedAndUnknownRequestsAreErrors) {
  auto bad_json = Call("this is not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_FALSE(bad_json.value().GetBool("ok", true));
  EXPECT_FALSE(bad_json.value().GetString("error").empty());

  auto bad_op = Call(R"({"op":"frobnicate"})");
  ASSERT_TRUE(bad_op.ok());
  EXPECT_FALSE(bad_op.value().GetBool("ok", true));

  auto bad_job = Call(R"({"op":"status"})");
  ASSERT_TRUE(bad_job.ok());
  EXPECT_FALSE(bad_job.value().GetBool("ok", true));

  auto unknown_job = Call(R"({"op":"status","job":424242})");
  ASSERT_TRUE(unknown_job.ok());
  EXPECT_FALSE(unknown_job.value().GetBool("ok", true));
}

TEST_F(ServiceSocketTest, ConcurrentJobsAreByteIdenticalToSoloRuns) {
  constexpr int kJobs = 6;
  std::vector<std::string> documents;
  documents.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    documents.push_back(ShuffledDoc(120 + 15 * i, 11 + 2 * i));
  }

  // One connection per thread, all submitting with wait+return_output so
  // the responses carry the sorted documents.
  std::vector<std::string> outputs(kJobs);
  std::vector<std::string> errors(kJobs);
  std::vector<std::thread> clients;
  clients.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    clients.emplace_back([this, &documents, &outputs, &errors, i] {
      auto client = ServiceClient::Connect(socket_path_);
      if (!client.ok()) {
        errors[i] = client.status().ToString();
        return;
      }
      auto response = client.value()->Call(
          SubmitRequest(documents[i], "tenant-" + std::to_string(i % 3),
                        /*wait=*/true, /*return_output=*/true));
      if (!response.ok()) {
        errors[i] = response.status().ToString();
        return;
      }
      if (!response.value().GetBool("ok")) {
        errors[i] = response.value().GetString("error", "server error");
        return;
      }
      const JsonValue* job = response.value().Find("job");
      if (job == nullptr || job->GetString("state") != "done") {
        errors[i] = "job not done: " +
                    (job != nullptr ? job->GetString("error") : "no record");
        return;
      }
      outputs[i] = response.value().GetString("output");
    });
  }
  for (std::thread& thread : clients) thread.join();

  const SortEnvOptions& service_env = service_->env()->options();
  auto spec = ParseOrderSpec("item:attr(id)n");
  ASSERT_TRUE(spec.ok());
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(errors[i].empty()) << "job " << i << ": " << errors[i];
    // Solo reference run: fresh env, same block size / budget / pinned
    // sort memory as the shared service env.
    SortEnvOptions solo;
    solo.block_size = service_env.block_size;
    solo.memory_blocks = service_env.memory_blocks;
    solo.sort_memory_blocks = service_env.sort_memory_blocks;
    Env env(solo);
    NexSortOptions sort_options;
    sort_options.order = *spec;
    NexSorter sorter(env.get(), sort_options);
    StringByteSource source(documents[i]);
    std::string expected;
    StringByteSink sink(&expected);
    NEX_ASSERT_OK(sorter.Sort(&source, &sink));
    EXPECT_EQ(outputs[i], expected) << "job " << i << " diverged";
  }

  // Stats over the same wire: every job accounted, queue drained.
  auto stats = Call(R"({"op":"stats"})");
  ASSERT_TRUE(stats.ok());
  const JsonValue* doc = stats.value().Find("stats");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->GetString("schema"), "nexsortd-stats-v1");
  const JsonValue* queue = doc->Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->GetUint("dispatched"), static_cast<uint64_t>(kJobs));
  EXPECT_EQ(queue->GetUint("depth"), 0u);
  const JsonValue* sessions = doc->Find("sessions");
  ASSERT_NE(sessions, nullptr);
  EXPECT_GE(sessions->array_items().size(), static_cast<size_t>(kJobs));
}

TEST_F(ServiceSocketTest, StatusWaitAndCancelRoundTrip) {
  auto submit = Call(SubmitRequest(ShuffledDoc(60, 13), "default",
                                   /*wait=*/false, /*return_output=*/false));
  ASSERT_TRUE(submit.ok()) << submit.status().ToString();
  ASSERT_TRUE(submit.value().GetBool("ok"))
      << submit.value().GetString("error");
  const JsonValue* record = submit.value().Find("job");
  ASSERT_NE(record, nullptr);
  uint64_t job_id = record->GetUint("id");
  ASSERT_GT(job_id, 0u);

  auto wait = Call(R"({"op":"wait","job":)" + std::to_string(job_id) + "}");
  ASSERT_TRUE(wait.ok());
  ASSERT_TRUE(wait.value().GetBool("ok"));
  EXPECT_EQ(wait.value().Find("job")->GetString("state"), "done");

  // Cancel on a terminal job: idempotent, state unchanged.
  auto cancel =
      Call(R"({"op":"cancel","job":)" + std::to_string(job_id) + "}");
  ASSERT_TRUE(cancel.ok());
  EXPECT_TRUE(cancel.value().GetBool("ok"));
  EXPECT_EQ(cancel.value().Find("job")->GetString("state"), "done");

  auto jobs = Call(R"({"op":"jobs"})");
  ASSERT_TRUE(jobs.ok());
  const JsonValue* list = jobs.value().Find("jobs");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->array_items().size(), 1u);
}

TEST_F(ServiceSocketTest, ShutdownOpSignalsTheDaemonLoop) {
  EXPECT_FALSE(server_->shutdown_requested());
  auto response = Call(R"({"op":"shutdown"})");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().GetBool("ok"));
  EXPECT_TRUE(server_->shutdown_requested());
  EXPECT_TRUE(server_->WaitForShutdownRequest()) << "returns without block";
}

}  // namespace
}  // namespace nexsort
