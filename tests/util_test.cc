// Unit tests for the util layer: Status/StatusOr, varint coding, the
// deterministic RNG, and string helpers.
#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace nexsort {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_FALSE(st.IsCorruption());
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
}

TEST(Status, AllConstructorsSetTheirCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(StatusOr, MovesValueOut) {
  StatusOr<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Varint, RoundTripsBoundaryValues) {
  for (uint64_t value :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
        uint64_t{16383}, uint64_t{16384}, uint64_t{1} << 32, UINT64_MAX}) {
    std::string buf;
    PutVarint64(&buf, value);
    EXPECT_EQ(buf.size(), static_cast<size_t>(VarintLength(value)));
    std::string_view view = buf;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(&view, &decoded).ok());
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(view.empty());
  }
}

TEST(Varint, DetectsTruncation) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  std::string_view view = buf;
  uint64_t decoded = 0;
  EXPECT_TRUE(GetVarint64(&view, &decoded).IsCorruption());
}

TEST(Varint, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  std::string_view view = buf;
  uint32_t decoded = 0;
  EXPECT_TRUE(GetVarint32(&view, &decoded).IsCorruption());
}

TEST(Varint, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'z'));
  std::string_view view = buf;
  std::string_view value;
  ASSERT_TRUE(GetLengthPrefixed(&view, &value).ok());
  EXPECT_EQ(value, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&view, &value).ok());
  EXPECT_EQ(value, "");
  ASSERT_TRUE(GetLengthPrefixed(&view, &value).ok());
  EXPECT_EQ(value.size(), 1000u);
  EXPECT_TRUE(view.empty());
}

TEST(Varint, LengthPrefixedDetectsTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(3);
  std::string_view view = buf;
  std::string_view value;
  EXPECT_TRUE(GetLengthPrefixed(&view, &value).IsCorruption());
}

TEST(Random, DeterministicForSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Random, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Random, IdentifierIsLowercaseAlpha) {
  Random rng(8);
  std::string id = rng.Identifier(64);
  EXPECT_EQ(id.size(), 64u);
  for (char c : id) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(Random, SeedZeroWorks) {
  Random rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 45u);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitSingleField) {
  auto parts = Split("abc", '/');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, ParseNumberAcceptsAndRejects) {
  double v = 0;
  EXPECT_TRUE(ParseNumber("42", &v));
  EXPECT_EQ(v, 42.0);
  EXPECT_TRUE(ParseNumber("-3.5", &v));
  EXPECT_EQ(v, -3.5);
  EXPECT_TRUE(ParseNumber("1e3", &v));
  EXPECT_EQ(v, 1000.0);
  EXPECT_FALSE(ParseNumber("", &v));
  EXPECT_FALSE(ParseNumber("12abc", &v));
  EXPECT_FALSE(ParseNumber("abc", &v));
}

TEST(StringUtil, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(StringUtil, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

}  // namespace
}  // namespace nexsort
