// Structural diff: the batch-update inverse. The headline property:
// ApplyBatchUpdates(base, StructuralDiff(base, target)) == target.
#include <gtest/gtest.h>

#include "merge/batch_update.h"
#include "merge/structural_diff.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

std::string Sort(std::string_view xml, const OrderSpec& spec) {
  NexSortOptions options;
  options.order = spec;
  return NexSortString(xml, options);
}

std::string Diff(const std::string& base, const std::string& target,
                 const OrderSpec& spec, DiffStats* stats = nullptr,
                 size_t buffer_limit = 64 * 1024) {
  DiffOptions options;
  options.order = spec;
  options.buffer_limit = buffer_limit;
  StringByteSource base_source(base);
  StringByteSource target_source(target);
  std::string out;
  StringByteSink sink(&out);
  Status st =
      StructuralDiff(&base_source, &target_source, &sink, options, stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

std::string Apply(const std::string& base, const std::string& batch,
                  const OrderSpec& spec) {
  Env env;
  BatchUpdateOptions options;
  options.order = spec;
  StringByteSource base_source(base);
  std::string out;
  StringByteSink sink(&out);
  Status st = ApplyBatchUpdates(&base_source, batch, env.get(), &sink, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(StructuralDiff, IdenticalDocumentsGiveEmptyBatch) {
  OrderSpec spec = OrderSpec::ByAttribute("id", true);
  std::string doc = Sort(
      "<db><rec id=\"1\"><v>x</v></rec><rec id=\"2\"><v>y</v></rec></db>",
      spec);
  DiffStats stats;
  std::string batch = Diff(doc, doc, spec, &stats);
  EXPECT_EQ(batch, "<db></db>");
  EXPECT_EQ(stats.unchanged, 2u);
  EXPECT_EQ(stats.inserted + stats.deleted + stats.replaced, 0u);
  EXPECT_EQ(Apply(doc, batch, spec), doc);
}

TEST(StructuralDiff, DetectsInsertDeleteReplace) {
  OrderSpec spec = OrderSpec::ByAttribute("id", true);
  std::string base = Sort(
      "<db>"
      "<rec id=\"1\"><v>one</v></rec>"
      "<rec id=\"2\"><v>two</v></rec>"
      "<rec id=\"3\"><v>three</v></rec>"
      "</db>",
      spec);
  std::string target = Sort(
      "<db>"
      "<rec id=\"1\"><v>one</v></rec>"       // unchanged
      "<rec id=\"2\"><v>TWO</v></rec>"       // changed
      "<rec id=\"4\"><v>four</v></rec>"      // inserted (3 deleted)
      "</db>",
      spec);
  DiffStats stats;
  std::string batch = Diff(base, target, spec, &stats);
  EXPECT_EQ(stats.unchanged, 1u);
  EXPECT_EQ(stats.replaced, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_NE(batch.find("op=\"replace\""), std::string::npos);
  EXPECT_NE(batch.find("op=\"delete\""), std::string::npos);
  EXPECT_EQ(Apply(base, batch, spec), target);
}

TEST(StructuralDiff, NestedChangesGetLazyWrappers) {
  OrderSpec spec = OrderSpec::ByAttribute("name");
  std::string base = Sort(
      "<cfg>"
      "<svc name=\"cache\"><opt name=\"size\" v=\"1G\"></opt></svc>"
      "<svc name=\"db\"><opt name=\"port\" v=\"5432\"></opt>"
      "<opt name=\"tls\" v=\"off\"></opt></svc>"
      "</cfg>",
      spec);
  std::string target = Sort(
      "<cfg>"
      "<svc name=\"cache\"><opt name=\"size\" v=\"1G\"></opt></svc>"
      "<svc name=\"db\"><opt name=\"port\" v=\"5432\"></opt>"
      "<opt name=\"tls\" v=\"on\"></opt></svc>"
      "</cfg>",
      spec);
  DiffStats stats;
  std::string batch = Diff(base, target, spec, &stats, /*buffer_limit=*/16);
  // The unchanged cache service must NOT appear in the batch; the db
  // wrapper must (its tls option changed).
  EXPECT_EQ(batch.find("cache"), std::string::npos);
  EXPECT_NE(batch.find("<svc name=\"db\">"), std::string::npos);
  EXPECT_EQ(Apply(base, batch, spec), target);
}

TEST(StructuralDiff, RoundTripOnRandomDocumentPairs) {
  // Random mutations of a generated document: the diff applied to the base
  // must always reproduce the target exactly.
  OrderSpec spec = OrderSpec::ByAttribute("id", true);
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    nexsort::Random rng(seed);
    // Base: records with unique ids and nested payloads.
    std::string base_xml = "<r>";
    std::string target_xml = "<r>";
    for (int i = 0; i < 60; ++i) {
      std::string payload = "<p><q>" + rng.Identifier(6) + "</q></p>";
      std::string element =
          "<x id=\"" + std::to_string(i) + "\">" + payload + "</x>";
      uint64_t fate = rng.Uniform(4);
      if (fate != 0) base_xml += element;  // 0 => insert-only in target
      if (fate == 1) {
        // mutate for the target
        target_xml += "<x id=\"" + std::to_string(i) + "\"><p><q>CHANGED" +
                      rng.Identifier(3) + "</q></p></x>";
      } else if (fate != 2) {  // 2 => deleted from target
        target_xml += element;
      }
    }
    base_xml += "</r>";
    target_xml += "</r>";

    std::string base = Sort(base_xml, spec);
    std::string target = Sort(target_xml, spec);
    std::string batch = Diff(base, target, spec);
    EXPECT_EQ(Apply(base, batch, spec), target) << "seed " << seed;
  }
}

TEST(StructuralDiff, OversizedSubtreesRecurseStructurally) {
  // A tiny buffer limit forces the splice/recursion path everywhere.
  OrderSpec spec = OrderSpec::ByAttribute("id", true);
  std::string base = Sort(
      "<r><g id=\"1\"><x id=\"1\"/><x id=\"2\"/><x id=\"3\"/></g>"
      "<g id=\"2\"><x id=\"9\"/></g></r>",
      spec);
  std::string target = Sort(
      "<r><g id=\"1\"><x id=\"1\"/><x id=\"3\"/><x id=\"4\"/></g>"
      "<g id=\"2\"><x id=\"9\"/></g></r>",
      spec);
  DiffStats stats;
  std::string batch = Diff(base, target, spec, &stats, /*buffer_limit=*/8);
  EXPECT_GT(stats.descended, 0u);
  EXPECT_EQ(Apply(base, batch, spec), target);
}

TEST(StructuralDiff, BatchIsItselfSorted) {
  OrderSpec spec = OrderSpec::ByAttribute("id", true);
  std::string base = Sort("<r><x id=\"2\"/><x id=\"5\"/></r>", spec);
  std::string target =
      Sort("<r><x id=\"1\"/><x id=\"3\"/><x id=\"9\"/></r>", spec);
  std::string batch = Diff(base, target, spec);
  // inserts 1,3,9 and deletes 2,5 interleaved in key order.
  EXPECT_LT(batch.find("id=\"1\""), batch.find("id=\"2\""));
  EXPECT_LT(batch.find("id=\"2\""), batch.find("id=\"3\""));
  EXPECT_LT(batch.find("id=\"3\""), batch.find("id=\"5\""));
  EXPECT_LT(batch.find("id=\"5\""), batch.find("id=\"9\""));
}

TEST(StructuralDiff, RootMismatchRejected) {
  DiffOptions options;
  options.order = OrderSpec::ByAttribute("id");
  StringByteSource base("<a/>");
  StringByteSource target("<b/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(StructuralDiff(&base, &target, &sink, options)
                  .IsInvalidArgument());

  StringByteSource base2("<a v=\"1\"/>");
  StringByteSource target2("<a v=\"2\"/>");
  EXPECT_TRUE(StructuralDiff(&base2, &target2, &sink, options)
                  .IsNotSupported());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
