// Run-formation policy tests (docs/RUN_FORMATION.md): replacement
// selection must be byte-identical to the quicksort-chunk baseline at
// every level of the stack while forming fewer, longer runs — a single
// run (and a skipped merge phase) on nearly-sorted input — and it must
// unwind its budget exactly on cancellation or an early-dropped stream.
#include <atomic>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "extmem/run_store.h"
#include "sort/external_merge_sort.h"
#include "sort/loser_tree.h"
#include "sort/replacement_selection.h"
#include "sort/sorted_stream.h"
#include "tests/test_util.h"
#include "util/cancellation.h"
#include "util/random.h"

namespace nexsort {
namespace {

using nexsort::testing::Env;

using Record = std::pair<std::string, std::string>;

/// Random records with heavy key duplication (40 distinct keys), the case
/// where stability bugs in the two-run fencing would surface. Values sit
/// around the paper's ~150 bytes so the per-slot tournament overhead does
/// not dominate the budget charge.
std::vector<Record> RandomRecords(uint64_t seed, size_t count) {
  Random rng(seed);
  std::vector<Record> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    records.emplace_back("k" + std::to_string(rng.Uniform(40)),
                         rng.Identifier(100 + rng.Uniform(100)));
  }
  return records;
}

/// Ascending fixed-width keys with every 16th adjacent pair swapped:
/// nearly sorted, so replacement selection should never fence.
std::vector<Record> NearlySortedRecords(size_t count) {
  std::vector<Record> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "%08zu", i);
    records.emplace_back(key, std::string(40, 'v'));
  }
  for (size_t i = 15; i + 1 < count; i += 16) {
    std::swap(records[i].first, records[i + 1].first);
  }
  return records;
}

/// External-sort `records` under `policy` and drain the full output.
std::vector<Record> SortWithPolicy(const std::vector<Record>& records,
                                   uint64_t memory_blocks,
                                   RunFormationPolicy policy,
                                   ExtSortStats* stats = nullptr) {
  Env env;
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(
      &store, {.memory_blocks = memory_blocks, .run_formation = policy});
  NEX_EXPECT_OK(sorter.init_status());
  for (const Record& record : records) {
    NEX_EXPECT_OK(sorter.Add(record.first, record.second));
  }
  NEX_EXPECT_OK(sorter.Finish());
  std::vector<Record> out;
  std::string key;
  std::string value;
  while (true) {
    auto more = sorter.Next(&key, &value);
    NEX_EXPECT_OK(more.status());
    if (!more.ok() || !more.value()) break;
    out.emplace_back(key, value);
  }
  if (stats != nullptr) *stats = sorter.stats();
  return out;
}

// Knuth's property, checked as bytes: the record sequence replacement
// selection produces is identical to the quicksort-chunk baseline across
// seeds and memory sizes, duplicates included — only run boundaries (and
// the merge tree over them) may differ.
TEST(RunFormation, ReplacementMatchesQuicksortAcrossSeedsAndMemory) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    std::vector<Record> records = RandomRecords(seed, 600);
    for (uint64_t memory_blocks : {3u, 4u, 8u}) {
      ExtSortStats qs_stats;
      ExtSortStats rs_stats;
      std::vector<Record> qs = SortWithPolicy(
          records, memory_blocks, RunFormationPolicy::kQuicksortChunks,
          &qs_stats);
      std::vector<Record> rs = SortWithPolicy(
          records, memory_blocks, RunFormationPolicy::kReplacementSelection,
          &rs_stats);
      ASSERT_EQ(qs.size(), records.size());
      EXPECT_EQ(qs, rs) << "seed=" << seed << " M=" << memory_blocks;
      EXPECT_EQ(rs_stats.records, qs_stats.records);
      EXPECT_EQ(rs_stats.bytes, qs_stats.bytes);
    }
  }
}

TEST(RunFormation, ReplacementFormsFewerRunsOnRandomInput) {
  std::vector<Record> records = RandomRecords(/*seed=*/3, 900);
  ExtSortStats qs_stats;
  ExtSortStats rs_stats;
  SortWithPolicy(records, /*memory_blocks=*/4,
                 RunFormationPolicy::kQuicksortChunks, &qs_stats);
  SortWithPolicy(records, /*memory_blocks=*/4,
                 RunFormationPolicy::kReplacementSelection, &rs_stats);
  ASSERT_FALSE(qs_stats.in_memory);
  ASSERT_FALSE(rs_stats.in_memory);
  // Expected ~2x mean run length; require a strict improvement and runs
  // that are on average longer than the quicksort path's.
  EXPECT_LT(rs_stats.initial_runs, qs_stats.initial_runs);
  EXPECT_GT(rs_stats.runs.avg_run_blocks(), qs_stats.runs.avg_run_blocks());
  EXPECT_EQ(rs_stats.runs.runs_formed, rs_stats.initial_runs);
}

// Nearly-sorted input never fences, so the whole input becomes one run
// and the merge phase is skipped entirely: Finish must not read a single
// block from the device (merging is the only reader before the drain).
TEST(RunFormation, NearlySortedFormsSingleRunAndSkipsMerge) {
  std::vector<Record> records = NearlySortedRecords(600);
  Env env;
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(
      &store, {.memory_blocks = 4,
               .run_formation = RunFormationPolicy::kReplacementSelection});
  NEX_ASSERT_OK(sorter.init_status());
  for (const Record& record : records) {
    NEX_ASSERT_OK(sorter.Add(record.first, record.second));
  }
  NEX_ASSERT_OK(sorter.Finish());
  ASSERT_FALSE(sorter.stats().in_memory) << "input must actually spill";
  EXPECT_EQ(sorter.stats().initial_runs, 1u);
  EXPECT_EQ(sorter.stats().merge_passes, 0u);
  // Finish primes the drain reader with the survivor's first block; a
  // merge pass would have re-read the whole spilled input. <= 1 read at
  // this point is exactly "zero merge-pass I/O".
  EXPECT_LE(env.device()->stats().reads.load(std::memory_order_relaxed), 1u)
      << "a skipped merge phase performs zero merge-pass I/O";

  // The single run still drains in order.
  std::string key;
  std::string value;
  std::string last;
  size_t drained = 0;
  while (true) {
    auto more = sorter.Next(&key, &value);
    NEX_ASSERT_OK(more.status());
    if (!more.value()) break;
    EXPECT_LE(last, key);
    last = key;
    ++drained;
  }
  EXPECT_EQ(drained, records.size());

  // The same input under quicksort chunks pays a real merge.
  ExtSortStats qs_stats;
  SortWithPolicy(records, /*memory_blocks=*/4,
                 RunFormationPolicy::kQuicksortChunks, &qs_stats);
  EXPECT_GT(qs_stats.initial_runs, 1u);
  EXPECT_GE(qs_stats.merge_passes, 1u);
}

// Mid-formation cancellation: the token is polled once per evicted
// record, so an Add shortly after Cancel() fails, and the RAII unwind
// returns every reserved block and frees every partial run.
TEST(RunFormation, CancellationMidFormationUnwindsBudgetExactly) {
  std::vector<Record> records = RandomRecords(/*seed=*/11, 800);
  Env env;
  const uint64_t baseline_used = env.budget()->used_blocks();
  CancellationToken token;
  Status failure = Status::OK();
  {
    RunStore store(env.device(), env.budget());
    ExternalMergeSorter sorter(
        &store,
        {.memory_blocks = 4,
         .cancel = &token,
         .run_formation = RunFormationPolicy::kReplacementSelection});
    NEX_ASSERT_OK(sorter.init_status());
    for (size_t i = 0; i < records.size(); ++i) {
      if (i == records.size() / 2) token.Cancel();
      failure = sorter.Add(records[i].first, records[i].second);
      if (!failure.ok()) break;
    }
    if (failure.ok()) failure = sorter.Finish();
    ASSERT_TRUE(failure.IsCancelled()) << failure.ToString();
  }
  EXPECT_EQ(env.budget()->used_blocks(), baseline_used);
  EXPECT_EQ(env.budget()->release_underflows(), 0u);
}

// ------------------------------------------------ streaming output -----

std::string RandomItemsDoc(int count, uint64_t seed) {
  Random rng(seed);
  std::vector<int> ids(count);
  for (int i = 0; i < count; ++i) ids[i] = i + 1;
  for (int i = count - 1; i > 0; --i) {
    std::swap(ids[i], ids[rng.Uniform(static_cast<uint64_t>(i) + 1)]);
  }
  std::string xml = "<list>";
  for (int id : ids) {
    xml += "<item id=\"" + std::to_string(id) +
           "\"><payload>abcdefghijklmnopqrstuvwxyz0123456789</payload>"
           "</item>";
  }
  xml += "</list>";
  return xml;
}

NexSortOptions NexOptions(RunFormationPolicy policy) {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.run_formation = policy;
  return options;
}

KeyPathSortOptions KeyPathOptions(RunFormationPolicy policy) {
  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.run_formation = policy;
  return options;
}

/// Drain a SortedStream fully, checking the chunk contract along the way.
std::string DrainStream(SortedStream* stream) {
  std::string out;
  std::string_view chunk;
  while (true) {
    auto more = stream->Next(&chunk);
    NEX_EXPECT_OK(more.status());
    if (!more.ok() || !more.value()) break;
    EXPECT_FALSE(chunk.empty()) << "Next(true) must carry bytes";
    out.append(chunk);
  }
  return out;
}

// Streaming changes delivery, never content: the concatenated chunks of
// NexSorter::SortStream equal the eager Sort output, under both policies
// (and the two policies agree with each other).
TEST(SortedStreamOutput, NexSorterStreamMatchesEagerBothPolicies) {
  std::string xml = RandomItemsDoc(1200, /*seed=*/5);
  std::string eager_qs = nexsort::testing::NexSortString(
      xml, NexOptions(RunFormationPolicy::kQuicksortChunks));
  std::string eager_rs = nexsort::testing::NexSortString(
      xml, NexOptions(RunFormationPolicy::kReplacementSelection));
  EXPECT_EQ(eager_qs, eager_rs) << "policies must agree byte for byte";
  for (RunFormationPolicy policy :
       {RunFormationPolicy::kQuicksortChunks,
        RunFormationPolicy::kReplacementSelection}) {
    Env env;
    NexSorter sorter(env.get(), NexOptions(policy));
    StringByteSource source(xml);
    auto stream = sorter.SortStream(&source);
    NEX_ASSERT_OK(stream.status());
    EXPECT_EQ(DrainStream(stream.value().get()), eager_qs);
    if (policy == RunFormationPolicy::kReplacementSelection) {
      EXPECT_GT(sorter.stats().sorts.run_formation.runs_formed, 0u)
          << "the flat fan-out must exercise external run formation";
    }
  }
}

TEST(SortedStreamOutput, KeyPathStreamMatchesEagerBothPolicies) {
  std::string xml = RandomItemsDoc(800, /*seed=*/9);
  std::string eager = nexsort::testing::KeyPathSortString(
      xml, KeyPathOptions(RunFormationPolicy::kQuicksortChunks));
  for (RunFormationPolicy policy :
       {RunFormationPolicy::kQuicksortChunks,
        RunFormationPolicy::kReplacementSelection}) {
    Env env;
    KeyPathXmlSorter sorter(env.get(), KeyPathOptions(policy));
    StringByteSource source(xml);
    auto stream = sorter.SortStream(&source);
    NEX_ASSERT_OK(stream.status());
    EXPECT_EQ(DrainStream(stream.value().get()), eager);
  }
}

// Dropping a stream after one chunk must release everything through RAII:
// budget back to baseline, no double releases.
TEST(SortedStreamOutput, DroppedStreamUnwindsBudget) {
  std::string xml = RandomItemsDoc(1200, /*seed=*/13);
  Env env;
  const uint64_t baseline_used = env.budget()->used_blocks();
  {
    NexSorter sorter(env.get(),
                     NexOptions(RunFormationPolicy::kReplacementSelection));
    StringByteSource source(xml);
    auto stream = sorter.SortStream(&source);
    NEX_ASSERT_OK(stream.status());
    std::string_view chunk;
    auto more = stream.value()->Next(&chunk);
    NEX_ASSERT_OK(more.status());
    ASSERT_TRUE(more.value());
    ASSERT_FALSE(chunk.empty());
  }  // stream + sorter dropped mid-output
  EXPECT_EQ(env.budget()->used_blocks(), baseline_used);
  EXPECT_EQ(env.budget()->release_underflows(), 0u);
}

// Cancelling between chunks: the next Next() observes the token, and the
// unwind is exact.
TEST(SortedStreamOutput, MidStreamCancellationUnwindsBudgetExactly) {
  std::string xml = RandomItemsDoc(1200, /*seed=*/17);
  Env env;
  const uint64_t baseline_used = env.budget()->used_blocks();
  {
    SortEnv::Session session = env.get()->NewSession();
    auto token = session.cancellation_handle();
    NexSorter sorter(std::move(session),
                     NexOptions(RunFormationPolicy::kReplacementSelection));
    StringByteSource source(xml);
    auto stream = sorter.SortStream(&source);
    NEX_ASSERT_OK(stream.status());
    std::string_view chunk;
    auto first = stream.value()->Next(&chunk);
    NEX_ASSERT_OK(first.status());
    ASSERT_TRUE(first.value());
    token->Cancel();
    auto next = stream.value()->Next(&chunk);
    ASSERT_FALSE(next.ok());
    EXPECT_TRUE(next.status().IsCancelled()) << next.status().ToString();
  }
  EXPECT_EQ(env.budget()->used_blocks(), baseline_used);
  EXPECT_EQ(env.budget()->release_underflows(), 0u);
}

// ------------------------------------------- tournament mechanics -----

// The LoserTree invariant replacement selection leans on: only the
// reigning champion may be re-keyed in place (Fill + ReplaySource); the
// tournament then surfaces winners in (tag, key, seq) order.
TEST(ReplacementHeap, ChampionReplayReseatsRefilledSlot) {
  std::deque<ReplacementHeapSlot> slots(4);
  const char* keys[] = {"d", "b", "c", "a"};
  std::vector<MergeSource*> sources;
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i].set_index(static_cast<uint32_t>(i));
    slots[i].Fill(ReplacementHeapSlot::kCurrentRunTag, keys[i], "v",
                  /*seq=*/i);
    sources.push_back(&slots[i]);
  }
  LoserTree tree(std::move(sources));
  NEX_ASSERT_OK(tree.Init());

  auto* champion = static_cast<ReplacementHeapSlot*>(tree.Min());
  ASSERT_NE(champion, nullptr);
  EXPECT_EQ(champion->user_key(), "a");

  // Refill the champion's slot with a larger key and replay only its
  // path: the next winner must be "b", and the refilled record surfaces
  // last.
  champion->Fill(ReplacementHeapSlot::kCurrentRunTag, "e", "v", /*seq=*/4);
  tree.ReplaySource(champion->index());

  std::vector<std::string> order;
  while (MergeSource* min = tree.Min()) {
    order.push_back(
        std::string(static_cast<ReplacementHeapSlot*>(min)->user_key()));
    NEX_ASSERT_OK(tree.AdvanceMin());
  }
  EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "d", "e"}));
}

// The fence tag dominates the user key: a fenced (next-run) record loses
// to every open-run record regardless of key order.
TEST(ReplacementHeap, FenceTagOrdersAcrossRuns) {
  std::deque<ReplacementHeapSlot> slots(2);
  slots[0].set_index(0);
  slots[0].Fill(ReplacementHeapSlot::kNextRunTag, "a", "v", /*seq=*/0);
  slots[1].set_index(1);
  slots[1].Fill(ReplacementHeapSlot::kCurrentRunTag, "z", "v", /*seq=*/1);
  LoserTree tree({&slots[0], &slots[1]});
  NEX_ASSERT_OK(tree.Init());
  auto* min = static_cast<ReplacementHeapSlot*>(tree.Min());
  ASSERT_NE(min, nullptr);
  EXPECT_EQ(min->user_key(), "z") << "open-run records drain first";
  EXPECT_TRUE(slots[0].fenced());
  slots[0].Unfence();
  EXPECT_FALSE(slots[0].fenced());
}

}  // namespace
}  // namespace nexsort
