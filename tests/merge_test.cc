// Structural merge (the paper's Example 1.1, reproduced literally), batch
// updates, and the nested-loop baseline.
#include <gtest/gtest.h>

#include "merge/batch_update.h"
#include "util/random.h"
#include "merge/nested_loop_merge.h"
#include "merge/structural_merge.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace nexsort {
namespace testing {
namespace {

// The two documents of the paper's Figure 1.
const char kPersonnelD1[] =
    "<company>"
    "<region name=\"NE\"></region>"
    "<region name=\"AC\">"
    "<branch name=\"Durham\">"
    "<employee ID=\"454\"></employee>"
    "<employee ID=\"323\"><name>Smith</name><phone>5552345</phone>"
    "</employee>"
    "</branch>"
    "<branch name=\"Atlanta\"></branch>"
    "</region>"
    "</company>";

const char kPayrollD2[] =
    "<company>"
    "<region name=\"NW\"></region>"
    "<region name=\"AC\">"
    "<branch name=\"Durham\">"
    "<employee ID=\"844\"></employee>"
    "<employee ID=\"323\"><salary>45000</salary><bonus>5000</bonus>"
    "</employee>"
    "</branch>"
    "<branch name=\"Miami\"></branch>"
    "</region>"
    "</company>";

// Figure 1's ordering: region by name, branch by name, employee by ID.
OrderSpec Figure1Spec() {
  OrderSpec spec;
  OrderRule employee;
  employee.element = "employee";
  employee.source = KeySource::kAttribute;
  employee.argument = "ID";
  spec.AddRule(employee);
  OrderRule by_name;
  by_name.element = "*";
  by_name.source = KeySource::kAttribute;
  by_name.argument = "name";
  spec.AddRule(by_name);
  return spec;
}

std::string SortThen(std::string_view xml, const OrderSpec& spec) {
  NexSortOptions options;
  options.order = spec;
  return NexSortString(xml, options);
}

TEST(StructuralMerge, ReproducesFigure1) {
  OrderSpec spec = Figure1Spec();
  std::string d1 = SortThen(kPersonnelD1, spec);
  std::string d2 = SortThen(kPayrollD2, spec);

  MergeOptions options;
  options.order = spec;
  StringByteSource left(d1);
  StringByteSource right(d2);
  std::string merged;
  StringByteSink sink(&merged);
  MergeStats stats;
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options, &stats));

  // The merged document at the bottom of Figure 1: regions AC, NE, NW in
  // name order; inside AC the branches Atlanta, Durham, Miami; inside
  // Durham employees 323 (merged: personal + salary), 454, 844.
  EXPECT_EQ(merged,
            "<company>"
            "<region name=\"AC\">"
            "<branch name=\"Atlanta\"></branch>"
            "<branch name=\"Durham\">"
            "<employee ID=\"323\"><name>Smith</name><phone>5552345</phone>"
            "<salary>45000</salary><bonus>5000</bonus></employee>"
            "<employee ID=\"454\"></employee>"
            "<employee ID=\"844\"></employee>"
            "</branch>"
            "<branch name=\"Miami\"></branch>"
            "</region>"
            "<region name=\"NE\"></region>"
            "<region name=\"NW\"></region>"
            "</company>");
  // AC, Durham, employee 323 (the root is merged before child matching).
  EXPECT_EQ(stats.matched_elements, 3u);
}

TEST(StructuralMerge, OutputStaysSorted) {
  OrderSpec spec = Figure1Spec();
  std::string d1 = SortThen(kPersonnelD1, spec);
  std::string d2 = SortThen(kPayrollD2, spec);
  MergeOptions options;
  options.order = spec;
  StringByteSource left(d1);
  StringByteSource right(d2);
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
  EXPECT_EQ(merged, OracleSort(merged, spec));
}

TEST(StructuralMerge, AttributeUnionLeftWins) {
  OrderSpec spec = OrderSpec::ByAttribute("k");
  MergeOptions options;
  options.order = spec;
  StringByteSource left("<r><x k=\"1\" a=\"L\" c=\"only\"/></r>");
  StringByteSource right("<r><x k=\"1\" a=\"R\" b=\"extra\"/></r>");
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
  EXPECT_EQ(merged,
            "<r><x k=\"1\" a=\"L\" c=\"only\" b=\"extra\"></x></r>");
}

TEST(StructuralMerge, TextPolicies) {
  OrderSpec spec = OrderSpec::ByAttribute("k");
  {
    MergeOptions options;
    options.order = spec;  // default kPreferLeft
    StringByteSource left("<r><x k=\"1\">L</x></r>");
    StringByteSource right("<r><x k=\"1\">R</x></r>");
    std::string merged;
    StringByteSink sink(&merged);
    NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
    EXPECT_EQ(merged, "<r><x k=\"1\">L</x></r>");
  }
  {
    MergeOptions options;
    options.order = spec;
    options.text_policy = MergeOptions::TextPolicy::kConcat;
    StringByteSource left("<r><x k=\"1\">L</x></r>");
    StringByteSource right("<r><x k=\"1\">R</x></r>");
    std::string merged;
    StringByteSink sink(&merged);
    NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
    EXPECT_EQ(merged, "<r><x k=\"1\">LR</x></r>");
  }
}

TEST(StructuralMerge, RightTextKeptWhenLeftHasNone) {
  OrderSpec spec = OrderSpec::ByAttribute("k");
  MergeOptions options;
  options.order = spec;
  StringByteSource left("<r><x k=\"1\"></x></r>");
  StringByteSource right("<r><x k=\"1\">R</x></r>");
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
  EXPECT_EQ(merged, "<r><x k=\"1\">R</x></r>");
}

TEST(StructuralMerge, MismatchedRootsRejected) {
  MergeOptions options;
  options.order = OrderSpec::ByAttribute("k");
  StringByteSource left("<a/>");
  StringByteSource right("<b/>");
  std::string merged;
  StringByteSink sink(&merged);
  EXPECT_TRUE(StructuralMerge(&left, &right, &sink, options)
                  .IsInvalidArgument());
}

TEST(StructuralMerge, MergeOfSortedHalvesEqualsSortOfUnion) {
  // Property: splitting a document's children into two halves, sorting
  // each, and merging gives the sorted whole (keys are unique here).
  std::string left_xml = "<r>";
  std::string right_xml = "<r>";
  std::string union_xml = "<r>";
  nexsort::Random rng(55);
  for (int i = 0; i < 60; ++i) {
    std::string element =
        "<item id=\"" + std::to_string(i) + "\"><v>" + rng.Identifier(5) +
        "</v></item>";
    union_xml += element;
    (i % 2 == 0 ? left_xml : right_xml) += element;
  }
  left_xml += "</r>";
  right_xml += "</r>";
  union_xml += "</r>";

  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string left_sorted = SortThen(left_xml, spec);
  std::string right_sorted = SortThen(right_xml, spec);
  MergeOptions options;
  options.order = spec;
  StringByteSource left(left_sorted);
  StringByteSource right(right_sorted);
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(StructuralMerge(&left, &right, &sink, options));
  EXPECT_EQ(merged, OracleSort(union_xml, spec));
}

TEST(BatchUpdate, InsertReplaceDelete) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string base = SortThen(
      "<db>"
      "<rec id=\"1\"><v>one</v></rec>"
      "<rec id=\"2\"><v>two</v></rec>"
      "<rec id=\"3\"><v>three</v></rec>"
      "</db>",
      spec);
  const std::string updates =
      "<db>"
      "<rec id=\"4\"><v>four</v></rec>"                       // insert
      "<rec id=\"2\" op=\"replace\"><v>TWO</v></rec>"         // replace
      "<rec id=\"3\" op=\"delete\"></rec>"                    // delete
      "</db>";

  Env env;
  BatchUpdateOptions options;
  options.order = spec;
  StringByteSource base_source(base);
  std::string result;
  StringByteSink sink(&result);
  MergeStats stats;
  NEX_ASSERT_OK(ApplyBatchUpdates(&base_source, updates, env.get(), &sink, options, &stats));
  EXPECT_EQ(result,
            "<db>"
            "<rec id=\"1\"><v>one</v></rec>"
            "<rec id=\"2\"><v>TWO</v></rec>"
            "<rec id=\"4\"><v>four</v></rec>"
            "</db>");
  EXPECT_EQ(stats.replaced, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.right_only, 1u);
  // Result remains sorted: applying an empty update keeps it identical.
  EXPECT_EQ(result, OracleSort(result, spec));
}

TEST(BatchUpdate, DeleteOfMissingElementIsSilent) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string base = SortThen("<db><rec id=\"1\"></rec></db>", spec);
  Env env;
  BatchUpdateOptions options;
  options.order = spec;
  StringByteSource base_source(base);
  std::string result;
  StringByteSink sink(&result);
  NEX_ASSERT_OK(ApplyBatchUpdates(
      &base_source, "<db><rec id=\"9\" op=\"delete\"></rec></db>",
      env.get(), &sink, options));
  EXPECT_EQ(result, "<db><rec id=\"1\"></rec></db>");
}

TEST(NestedLoopMerge, EnrichesMatchesAndCountsRescans) {
  Env env(256, 16);
  // Right document on a counted device.
  const std::string right_xml =
      "<company>"
      "<region name=\"AC\">"
      "<branch name=\"Durham\">"
      "<employee ID=\"323\" salary=\"45000\"></employee>"
      "<employee ID=\"844\" salary=\"61000\"></employee>"
      "</branch>"
      "</region>"
      "</company>";
  auto range = StoreBytes(env.device(), env.budget(), right_xml);
  ASSERT_TRUE(range.ok());

  NestedLoopMergeOptions options;
  options.order = Figure1Spec();
  options.match_level = 4;  // employees
  NestedLoopMergeStats stats;
  StringByteSource left(kPersonnelD1);
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(NestedLoopMerge(&left, env.device(), env.budget(), *range,
                                &sink, options, &stats));
  EXPECT_EQ(stats.probes, 2u);   // two employees in D1
  EXPECT_EQ(stats.matches, 1u);  // only 323 exists in the right doc
  EXPECT_GT(stats.right_bytes_scanned, 0u);
  // The matched employee gained the salary attribute.
  EXPECT_NE(merged.find("<employee ID=\"323\" salary=\"45000\">"),
            std::string::npos);
  // The unmatched one is unchanged.
  EXPECT_NE(merged.find("<employee ID=\"454\"></employee>"),
            std::string::npos);
}

TEST(NestedLoopMerge, RescanIoGrowsWithProbes) {
  // 20 probes against a right document => ~20 partial scans; the counted
  // device must show rescan reads well above a single pass.
  Env env(128, 16);
  std::string left_xml = "<r>";
  std::string right_xml = "<r>";
  for (int i = 0; i < 20; ++i) {
    left_xml += "<x id=\"" + std::to_string(i) + "\"></x>";
    right_xml += "<x id=\"" + std::to_string(i) + "\" extra=\"e" +
                 std::to_string(i) + "\"></x>";
  }
  left_xml += "</r>";
  right_xml += "</r>";
  auto range = StoreBytes(env.device(), env.budget(), right_xml);
  ASSERT_TRUE(range.ok());
  uint64_t single_pass_blocks =
      (range->byte_size + 127) / 128;

  NestedLoopMergeOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.match_level = 2;
  NestedLoopMergeStats stats;
  uint64_t reads_before = env.device()->stats().reads;
  StringByteSource left(left_xml);
  std::string merged;
  StringByteSink sink(&merged);
  NEX_ASSERT_OK(NestedLoopMerge(&left, env.device(), env.budget(), *range,
                                &sink, options, &stats));
  uint64_t reads = env.device()->stats().reads - reads_before;
  EXPECT_EQ(stats.probes, 20u);
  EXPECT_EQ(stats.matches, 20u);
  EXPECT_GT(reads, 3 * single_pass_blocks);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
