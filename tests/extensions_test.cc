// Tests for the library's extensions beyond Figure 4: the sortedness
// checker, document-order preservation via sequence attributes (paper
// Section 1), and XSort-style scoped sorting (related work, Section 2).
#include <gtest/gtest.h>

#include "core/sorted_check.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(SortedCheck, AcceptsSortedRejectsUnsorted) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  auto sorted = CheckSorted("<r><a id=\"1\"/><a id=\"2\"/><a id=\"2\"/></r>",
                            spec);
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted->sorted);
  EXPECT_EQ(sorted->elements, 4u);

  auto unsorted = CheckSorted("<r><a id=\"2\"/><a id=\"1\"/></r>", spec);
  ASSERT_TRUE(unsorted.ok());
  EXPECT_FALSE(unsorted->sorted);
  EXPECT_FALSE(unsorted->violation.empty());
}

TEST(SortedCheck, ChecksEveryLevel) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  // Top level sorted, second level not.
  auto report = CheckSorted(
      "<r><a id=\"1\"><b id=\"9\"/><b id=\"3\"/></a><a id=\"2\"/></r>", spec);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->sorted);
}

TEST(SortedCheck, DepthLimitExemptsDeepLists) {
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  const std::string xml =
      "<r><a id=\"1\"><b id=\"9\"/><b id=\"3\"/></a><a id=\"2\"/></r>";
  auto strict = CheckSorted(xml, spec, /*depth_limit=*/0);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->sorted);
  auto limited = CheckSorted(xml, spec, /*depth_limit=*/1);
  ASSERT_TRUE(limited.ok());
  EXPECT_TRUE(limited->sorted);
}

TEST(SortedCheck, ComplexKeysResolvedLikeTheSorter) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "p";
  rule.source = KeySource::kChildText;
  rule.argument = "k";
  spec.AddRule(rule);
  auto good = CheckSorted(
      "<r><p><k>alpha</k></p><p><k>beta</k></p></r>", spec);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->sorted);
  auto bad = CheckSorted(
      "<r><p><k>beta</k></p><p><k>alpha</k></p></r>", spec);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->sorted);
}

TEST(SortedCheck, NexSortOutputAlwaysPasses) {
  for (uint64_t seed : {400u, 401u, 402u}) {
    RandomTreeGenerator generator(5, 6, {.seed = seed, .element_bytes = 60});
    auto xml = generator.GenerateString();
    ASSERT_TRUE(xml.ok());
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    std::string sorted = NexSortString(*xml, options, 512, 10);
    auto report = CheckSorted(sorted, options.order);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->sorted) << report->violation << " seed " << seed;
    // And the raw input (vanishingly unlikely to be sorted) fails.
    auto input_report = CheckSorted(*xml, options.order);
    ASSERT_TRUE(input_report.ok());
    EXPECT_FALSE(input_report->sorted);
  }
}

TEST(OrderPreservation, RoundTripRestoresElementOrder) {
  // Paper Section 1: record a sequence attribute while sorting, then a
  // final sort by that attribute restores the original ordering.
  RandomTreeGenerator generator(4, 6,
                                {.seed = 77, .element_bytes = 60,
                                 .leaf_text = false});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  NexSortOptions sort_options;
  sort_options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  sort_options.record_order_attribute = "nx_seq";
  std::string sorted = NexSortString(*xml, sort_options);
  // The sorted document carries the bookkeeping attribute.
  EXPECT_NE(sorted.find("nx_seq=\""), std::string::npos);

  NexSortOptions restore_options;
  restore_options.order = OrderSpec::ByAttribute("nx_seq", /*numeric=*/true);
  restore_options.strip_attribute = "nx_seq";
  std::string restored = NexSortString(sorted, restore_options);
  EXPECT_EQ(restored, *xml);
}

TEST(OrderPreservation, RecordedDocumentIsStillSorted) {
  RandomTreeGenerator generator(4, 5, {.seed = 78, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.record_order_attribute = "nx_seq";
  std::string sorted = NexSortString(*xml, options);
  auto report = CheckSorted(sorted, options.order);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->sorted) << report->violation;
}

TEST(ScopedSort, SortsOnlyScopedLists) {
  const std::string xml =
      "<db>"
      "<table name=\"zeta\">"
      "<row id=\"9\"/><row id=\"2\"/>"
      "</table>"
      "<group name=\"alpha\">"
      "<row id=\"7\"/><row id=\"3\"/>"
      "</group>"
      "</db>";
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.sort_scope_tags = {"table"};
  std::string sorted = NexSortString(xml, options);
  // table's rows reorder; db's children and group's rows keep order.
  EXPECT_EQ(sorted,
            "<db>"
            "<table name=\"zeta\">"
            "<row id=\"2\"></row><row id=\"9\"></row>"
            "</table>"
            "<group name=\"alpha\">"
            "<row id=\"7\"></row><row id=\"3\"></row>"
            "</group>"
            "</db>");
}

TEST(ScopedSort, MatchesDomReferenceAcrossMemorySizes) {
  RandomTreeGenerator generator(5, 6, {.seed = 80, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  std::vector<std::string> scope = {"n2", "n4"};
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  auto reference = SortXmlStringInMemory(*xml, spec, 0, &scope);
  ASSERT_TRUE(reference.ok());

  for (uint64_t memory_blocks : {32u, 8u}) {  // internal and external paths
    NexSortOptions options;
    options.order = spec;
    options.sort_scope_tags = scope;
    EXPECT_EQ(NexSortString(*xml, options, 512, memory_blocks), *reference)
        << "memory " << memory_blocks;
  }
}

TEST(ScopedSort, RejectsUnsupportedCombinations) {
  Env env;
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  options.sort_scope_tags = {"a"};
  options.graceful_degeneration = true;
  NexSorter sorter(env.get(), options);
  StringByteSource source("<a/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(sorter.Sort(&source, &sink).IsNotSupported());
}

TEST(ScopedSort, EmptyScopeMeansHeadToToe) {
  RandomTreeGenerator generator(4, 5, {.seed = 81, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  EXPECT_EQ(NexSortString(*xml, options), OracleSort(*xml, options.order));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
