// UnitScanner: levels, sequence numbers, fan-out stats, simple keys on
// start units, and complex-key resolution on end units.
#include <gtest/gtest.h>

#include "core/unit_scanner.h"
#include "tests/test_util.h"

namespace nexsort {
namespace testing {
namespace {

struct TraceEntry {
  ScanEvent::Kind kind;
  uint32_t level;
  std::string key;
  std::string name;
};

std::vector<TraceEntry> Scan(std::string_view xml, const OrderSpec& spec) {
  StringByteSource source(xml);
  UnitScanner scanner(&source, &spec);
  std::vector<TraceEntry> trace;
  ScanEvent event;
  while (true) {
    auto more = scanner.Next(&event);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    trace.push_back({event.kind, event.unit.level, event.unit.key,
                     event.unit.name});
  }
  return trace;
}

TEST(UnitScanner, LevelsAndKinds) {
  OrderSpec spec;
  auto trace = Scan("<a><b>t</b><c/></a>", spec);
  ASSERT_EQ(trace.size(), 7u);  // S:a S:b T E:b S:c E:c E:a
  EXPECT_EQ(trace[0].kind, ScanEvent::Kind::kStart);
  EXPECT_EQ(trace[0].level, 1u);
  EXPECT_EQ(trace[1].kind, ScanEvent::Kind::kStart);  // b
  EXPECT_EQ(trace[1].level, 2u);
  EXPECT_EQ(trace[2].kind, ScanEvent::Kind::kText);
  EXPECT_EQ(trace[2].level, 3u);  // text is a child of b
  EXPECT_EQ(trace[3].kind, ScanEvent::Kind::kEnd);  // /b
  EXPECT_EQ(trace[3].level, 2u);
  EXPECT_EQ(trace[4].kind, ScanEvent::Kind::kStart);  // c
  EXPECT_EQ(trace[4].level, 2u);
  EXPECT_EQ(trace[5].kind, ScanEvent::Kind::kEnd);  // /c
  EXPECT_EQ(trace[5].level, 2u);
  EXPECT_EQ(trace[6].kind, ScanEvent::Kind::kEnd);  // /a
  EXPECT_EQ(trace[6].level, 1u);
}

TEST(UnitScanner, SequenceNumbersIncreaseInDocumentOrder) {
  OrderSpec spec;
  StringByteSource source("<a><b/><c/><d><e/></d></a>");
  UnitScanner scanner(&source, &spec);
  ScanEvent event;
  uint64_t last_seq = 0;
  bool first = true;
  while (true) {
    auto more = scanner.Next(&event);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (event.kind == ScanEvent::Kind::kEnd) continue;
    if (!first) {
      EXPECT_GT(event.unit.seq, last_seq);
    }
    last_seq = event.unit.seq;
    first = false;
  }
}

TEST(UnitScanner, SimpleKeysOnStartUnits) {
  OrderSpec spec = OrderSpec::ByAttribute("id");
  auto trace = Scan("<r id=\"root\"><x id=\"k1\"/></r>", spec);
  EXPECT_EQ(trace[0].key, "root");
  EXPECT_EQ(trace[1].key, "k1");
}

TEST(UnitScanner, StatsCaptureShape) {
  OrderSpec spec;
  StringByteSource source(
      "<a><b><x/><x/><x/><x/></b><b><x/></b><b/>text-at-root</a>");
  UnitScanner scanner(&source, &spec);
  ScanEvent event;
  while (true) {
    auto more = scanner.Next(&event);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
  }
  EXPECT_EQ(scanner.stats().elements, 9u);
  EXPECT_EQ(scanner.stats().text_nodes, 1u);
  EXPECT_EQ(scanner.stats().max_depth, 3u);
  // Root has 3 element children + 1 text = 4; first b has 4 children.
  EXPECT_EQ(scanner.stats().max_fanout, 4u);
}

TEST(UnitScanner, ComplexKeyResolvedOnEnd) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "person";
  rule.source = KeySource::kChildText;
  rule.argument = "name/last";
  spec.AddRule(rule);

  auto trace = Scan(
      "<all><person><name><first>Ada</first><last>Byron</last></name>"
      "</person></all>",
      spec);
  // person start has no key; its end carries the resolved key.
  ASSERT_GE(trace.size(), 2u);
  EXPECT_EQ(trace[1].name, "person");
  EXPECT_EQ(trace[1].key, "");
  bool found_end_key = false;
  for (const auto& entry : trace) {
    if (entry.kind == ScanEvent::Kind::kEnd && entry.level == 2 &&
        entry.key == "Byron") {
      found_end_key = true;
    }
  }
  EXPECT_TRUE(found_end_key);
}

TEST(UnitScanner, ComplexKeyFirstMatchWins) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "p";
  rule.source = KeySource::kChildText;
  rule.argument = "k";
  spec.AddRule(rule);
  auto trace = Scan("<all><p><k>first</k><k>second</k></p></all>", spec);
  bool saw = false;
  for (const auto& entry : trace) {
    if (entry.kind == ScanEvent::Kind::kEnd && entry.level == 2) {
      EXPECT_EQ(entry.key, "first");
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(UnitScanner, ComplexKeyPathMustMatchExactDepth) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "p";
  rule.source = KeySource::kChildText;
  rule.argument = "a/b";
  spec.AddRule(rule);
  // The b here is NOT under a direct a-child, so no key resolves.
  auto trace = Scan("<all><p><x><a><b>deep</b></a></x></p></all>", spec);
  for (const auto& entry : trace) {
    if (entry.kind == ScanEvent::Kind::kEnd && entry.level == 2) {
      EXPECT_EQ(entry.key, "");
    }
  }
}

TEST(UnitScanner, NestedComplexElementsResolveIndependently) {
  // person elements nested inside person elements: each must capture its
  // own name, not an ancestor's or descendant's.
  OrderSpec spec;
  OrderRule rule;
  rule.element = "p";
  rule.source = KeySource::kChildText;
  rule.argument = "n";
  spec.AddRule(rule);
  auto trace = Scan(
      "<all><p><n>outer</n><p><n>inner</n></p></p></all>", spec);
  std::vector<std::string> end_keys;
  for (const auto& entry : trace) {
    if (entry.kind == ScanEvent::Kind::kEnd && entry.key.size() > 0) {
      end_keys.push_back(entry.key);
    }
  }
  ASSERT_EQ(end_keys.size(), 2u);
  EXPECT_EQ(end_keys[0], "inner");   // inner closes first
  EXPECT_EQ(end_keys[1], "outer");
}

TEST(UnitScanner, PropagatesParseErrors) {
  OrderSpec spec;
  StringByteSource source("<a><b></a>");
  UnitScanner scanner(&source, &spec);
  ScanEvent event;
  Status error;
  while (true) {
    auto more = scanner.Next(&event);
    if (!more.ok()) {
      error = more.status();
      break;
    }
    if (!*more) break;
  }
  EXPECT_TRUE(error.IsParseError());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
