// Tests for the observability layer (src/obs/): JSON writer correctness,
// histogram bucketing and percentiles, tracer span nesting with I/O and
// memory-budget delta attribution, run-lifecycle events, the telemetry
// JSON schema, plus the satellite guarantees (IoCategoryName round-trip,
// MemoryBudget release-underflow clamping).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "obs/chrome_trace.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/telemetry_hub.h"
#include "obs/tracer.h"
#include "tests/test_util.h"

namespace nexsort {
namespace testing {
namespace {

// ---------------------------------------------------------------- JsonWriter

TEST(JsonWriter, ScalarsAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.Int(-3);
  w.Key("b");
  w.Uint(7);
  w.Key("c");
  w.String("x");
  w.Key("d");
  w.Bool(true);
  w.Key("e");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"a\":-3,\"b\":7,\"c\":\"x\",\"d\":true,\"e\":null}");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("list");
  w.BeginArray();
  w.Uint(1);
  w.Uint(2);
  w.BeginObject();
  w.Key("k");
  w.String("v");
  w.EndObject();
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.Key("tail");
  w.Uint(9);
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"list\":[1,2,{\"k\":\"v\"}],\"empty\":{},\"tail\":9}");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter w;
  w.BeginArray();
  w.String("quote\" slash\\ tab\t newline\n bell\x07");
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(),
            "[\"quote\\\" slash\\\\ tab\\t newline\\n bell\\u0007\"]");
}

TEST(JsonWriter, DoublesRoundTripAndNonFinite) {
  JsonWriter w;
  w.BeginArray();
  w.Double(0.25);
  w.Double(1.0 / 3.0);
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  std::string text = std::move(w).Take();
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
  double parsed = 0.0;
  sscanf(text.c_str(), "[%*[^,],%lf", &parsed);
  EXPECT_EQ(parsed, 1.0 / 3.0);
}

TEST(JsonWriter, RawSplicesVerbatim) {
  JsonWriter inner;
  inner.BeginObject();
  inner.Key("n");
  inner.Uint(1);
  inner.EndObject();
  std::string inner_text = std::move(inner).Take();

  JsonWriter w;
  w.BeginObject();
  w.Key("first");
  w.Raw(inner_text);
  w.Key("second");
  w.Raw(inner_text);
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(), "{\"first\":{\"n\":1},\"second\":{\"n\":1}}");
}

// ----------------------------------------------------------------- Histogram

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  // Every value lands in the bucket whose bounds contain it.
  for (uint64_t v : {0ull, 1ull, 2ull, 5ull, 1023ull, 1024ull, 1ull << 20}) {
    int i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i));
    if (i > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1));
    }
  }
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, PercentilesAreOrderedAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  double p50 = h.Percentile(0.50);
  double p90 = h.Percentile(0.90);
  double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Clamped to the observed range, never beyond.
  EXPECT_GE(h.Percentile(0.0), 1.0);
  EXPECT_LE(h.Percentile(1.0), 1000.0);
  // Power-of-two buckets: accurate to within a bucket width.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1023.0);
}

TEST(Histogram, SingleValueCollapses) {
  Histogram h;
  h.Record(42);
  h.Record(42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 42.0);
}

// ----------------------------------------------------------------- Registry

TEST(MetricsRegistry, StablePointersAndDeterministicExport) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter* c = registry.GetCounter("zulu");
  Gauge* g = registry.GetGauge("alpha");
  registry.GetCounter("alpha")->Add(2);
  c->Add(5);
  g->Set(3);
  g->Set(1);
  EXPECT_EQ(registry.GetCounter("zulu"), c);  // same instrument on re-lookup
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(g->value(), 1u);
  EXPECT_EQ(g->max(), 3u);

  JsonWriter w;
  registry.ToJson(&w);
  std::string json = std::move(w).Take();
  // std::map ordering: "alpha" before "zulu".
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zulu\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
}

// -------------------------------------------------------------------- Spans

TEST(Tracer, SpanNestingAndTiming) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner");
    }
    ScopedSpan sibling(&tracer, "sibling");
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent_id, spans[0].id);
  for (const SpanRecord& span : spans) {
    EXPECT_TRUE(span.closed) << span.name;
    EXPECT_GE(span.duration_seconds, 0.0);
    EXPECT_GE(span.start_seconds, 0.0);
  }
  // Children are contained in the parent's interval.
  EXPECT_LE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_LE(spans[1].start_seconds + spans[1].duration_seconds,
            spans[0].start_seconds + spans[0].duration_seconds + 1e-9);
}

TEST(Tracer, EndSpanClosesDanglingChildren) {
  Tracer tracer;
  int64_t outer = tracer.BeginSpan("outer");
  tracer.BeginSpan("leaked");
  tracer.EndSpan(outer);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_TRUE(tracer.spans()[0].closed);
  EXPECT_TRUE(tracer.spans()[1].closed);
  tracer.EndSpan(outer);  // double close: no-op
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(Tracer, NullTracerHelpersAreNoOps) {
  ScopedSpan span(nullptr, "nothing");
  span.End();
  TraceRunEvent(nullptr, RunEventKind::kCreated, IoCategory::kRunWrite, 100);
  // Nothing to assert beyond "does not crash".
}

TEST(Tracer, SpanIoDeltasMatchDeviceCounters) {
  auto device = NewMemoryBlockDevice(512);
  Tracer tracer(device.get());

  std::string block(512, 'x');
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(4, &first));

  int64_t outer = tracer.BeginSpan("outer");
  {
    IoCategoryScope scope(device.get(), IoCategory::kRunWrite);
    NEX_ASSERT_OK(device->Write(first, block.data()));
    NEX_ASSERT_OK(device->Write(first + 1, block.data()));
  }
  int64_t inner = tracer.BeginSpan("inner");
  {
    IoCategoryScope scope(device.get(), IoCategory::kRunRead);
    NEX_ASSERT_OK(device->Read(first, block.data()));
  }
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);

  const SpanRecord& outer_span = tracer.spans()[0];
  const SpanRecord& inner_span = tracer.spans()[1];
  int run_write = static_cast<int>(IoCategory::kRunWrite);
  int run_read = static_cast<int>(IoCategory::kRunRead);

  // Inner saw only its own read.
  EXPECT_EQ(inner_span.reads, 1u);
  EXPECT_EQ(inner_span.writes, 0u);
  EXPECT_EQ(inner_span.category_reads[run_read], 1u);

  // Outer is inclusive of the child.
  EXPECT_EQ(outer_span.writes, 2u);
  EXPECT_EQ(outer_span.reads, 1u);
  EXPECT_EQ(outer_span.category_writes[run_write], 2u);
  EXPECT_EQ(outer_span.category_reads[run_read], 1u);
  EXPECT_GT(outer_span.modeled_seconds, 0.0);

  // And the span deltas sum to the device's own counters.
  EXPECT_EQ(outer_span.reads + outer_span.writes, device->stats().total());
}

TEST(Tracer, SpanBudgetMarks) {
  MemoryBudget budget(16);
  Tracer tracer(nullptr, &budget);
  NEX_ASSERT_OK(budget.Acquire(2));
  int64_t id = tracer.BeginSpan("phase");
  NEX_ASSERT_OK(budget.Acquire(6));
  budget.Release(4);
  tracer.EndSpan(id);
  const SpanRecord& span = tracer.spans()[0];
  EXPECT_EQ(span.budget_used_open, 2u);
  EXPECT_EQ(span.budget_used_close, 4u);
  EXPECT_EQ(span.budget_peak, 8u);
  budget.Release(4);
}

// --------------------------------------------------------------- Run events

TEST(Tracer, RunEventsFeedCountsAndHistogram) {
  Tracer tracer;
  TraceRunEvent(&tracer, RunEventKind::kCreated, IoCategory::kRunWrite, 4096,
                1);
  TraceRunEvent(&tracer, RunEventKind::kCreated, IoCategory::kRunWrite, 8192,
                2);
  TraceRunEvent(&tracer, RunEventKind::kReadBack, IoCategory::kRunRead, 4096,
                1);
  TraceRunEvent(&tracer, RunEventKind::kFragment, IoCategory::kRunWrite, 100,
                3);

  ASSERT_EQ(tracer.run_events().size(), 4u);
  const uint64_t* counts = tracer.run_event_counts();
  EXPECT_EQ(counts[static_cast<int>(RunEventKind::kCreated)], 2u);
  EXPECT_EQ(counts[static_cast<int>(RunEventKind::kReadBack)], 1u);
  EXPECT_EQ(counts[static_cast<int>(RunEventKind::kFragment)], 1u);
  EXPECT_EQ(counts[static_cast<int>(RunEventKind::kMerged)], 0u);

  Histogram* sizes = tracer.metrics()->GetHistogram("run_size_bytes");
  EXPECT_EQ(sizes->count(), 2u);
  EXPECT_EQ(sizes->sum(), 4096u + 8192u);
  Histogram* fragments = tracer.metrics()->GetHistogram("fragment_run_bytes");
  EXPECT_EQ(fragments->count(), 1u);

  const RunEvent& first = tracer.run_events()[0];
  EXPECT_EQ(first.run_id, 1u);
  EXPECT_EQ(first.bytes, 4096u);
  EXPECT_GE(first.at_seconds, 0.0);
}

TEST(Tracer, RunEventKindNamesAreDistinct) {
  for (int i = 0; i < kNumRunEventKinds; ++i) {
    const char* name = RunEventKindName(static_cast<RunEventKind>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (int j = 0; j < i; ++j) {
      EXPECT_STRNE(name, RunEventKindName(static_cast<RunEventKind>(j)));
    }
  }
}

// -------------------------------------------------------------- JSON schema

TEST(Tracer, TelemetryJsonSchema) {
  auto device = NewMemoryBlockDevice(512);
  MemoryBudget budget(8);
  Tracer tracer(device.get(), &budget);
  {
    ScopedSpan span(&tracer, "phase_one");
    tracer.metrics()->GetCounter("widgets")->Add(3);
    tracer.metrics()->GetHistogram("sizes")->Record(10);
    TraceRunEvent(&tracer, RunEventKind::kCreated, IoCategory::kRunWrite, 64,
                  1);
  }
  std::string json = tracer.ToJsonString();

  // Golden structure: the keys every consumer of nexsort-telemetry-v1
  // (scripts/check_telemetry_schema.py, the bench readers) relies on.
  for (const char* key :
       {"\"schema\":\"nexsort-telemetry-v1\"", "\"elapsed_seconds\":",
        "\"spans\":[", "\"name\":\"phase_one\"", "\"wall_seconds\":",
        "\"io\":", "\"categories\":", "\"memory\":", "\"budget_peak\":",
        "\"run_events\":", "\"by_kind\":", "\"created\":1", "\"metrics\":",
        "\"counters\":", "\"widgets\":3", "\"histograms\":", "\"p50\":",
        "\"buckets\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(Tracer, JsonlOneObjectPerLine) {
  Tracer tracer;
  {
    ScopedSpan a(&tracer, "a");
    TraceRunEvent(&tracer, RunEventKind::kCreated, IoCategory::kRunWrite, 64,
                  1);
  }
  std::string jsonl = tracer.ToJsonl();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  size_t lines = 0;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    size_t eol = jsonl.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = jsonl.substr(pos, eol - pos);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 2u);  // one span + one run event
}

TEST(IoStats, ToJsonCoversEveryCategory) {
  auto device = NewMemoryBlockDevice(512);
  std::string json = device->stats().ToJsonString();
  for (int i = 0; i < kNumIoCategories; ++i) {
    std::string key =
        "\"" + std::string(IoCategoryName(static_cast<IoCategory>(i))) + "\"";
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

// ------------------------------------------------- Satellite: category names

TEST(IoCategory, NameRoundTripCoversEveryCategory) {
  // kNumIoCategories is derived from the enum via static_assert in the
  // header; here we pin that every enumerator has a distinct non-empty
  // human name, so a new category cannot silently alias "other".
  const char* other_name = IoCategoryName(IoCategory::kOther);
  for (int i = 0; i < kNumIoCategories; ++i) {
    IoCategory category = static_cast<IoCategory>(i);
    const char* name = IoCategoryName(category);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    if (category != IoCategory::kOther) {
      EXPECT_STRNE(name, other_name) << "category " << i;
    }
    for (int j = 0; j < i; ++j) {
      EXPECT_STRNE(name, IoCategoryName(static_cast<IoCategory>(j)))
          << "categories " << j << " and " << i << " share a name";
    }
  }
}

// --------------------------------------------- Satellite: release underflow

TEST(MemoryBudget, ReleaseUnderflowClampsInsteadOfWrapping) {
  MemoryBudget budget(8);
  NEX_ASSERT_OK(budget.Acquire(3));
  budget.Release(5);  // caller bug: returns more than in use
  EXPECT_EQ(budget.used_blocks(), 0u);
  EXPECT_EQ(budget.release_underflows(), 1u);
  // The cap still works afterwards: no silent wrap to a huge used count,
  // and no silently unlimited budget either.
  EXPECT_EQ(budget.available_blocks(), 8u);
  NEX_ASSERT_OK(budget.Acquire(8));
  EXPECT_FALSE(budget.Acquire(1).ok());
  budget.Release(8);
  EXPECT_EQ(budget.release_underflows(), 1u);
}

TEST(MemoryBudget, NormalReleaseDoesNotCountAsUnderflow) {
  MemoryBudget budget(4);
  NEX_ASSERT_OK(budget.Acquire(4));
  budget.Release(2);
  budget.Release(2);
  EXPECT_EQ(budget.release_underflows(), 0u);
  EXPECT_EQ(budget.used_blocks(), 0u);
}

// ------------------------------------------------- Percentile interpolation

TEST(Histogram, InterpolationIsExactWithinOneUniformBucket) {
  // 512..1023 is exactly one power-of-two bucket; filled uniformly, the
  // linear interpolation reproduces the true quantiles exactly.
  Histogram h;
  for (uint64_t v = 512; v <= 1023; ++v) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 512.0 + 511.0 * 0.50);  // = 767.5
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 512.0 + 511.0 * 0.95);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 512.0 + 511.0 * 0.99);
  // ... and 767.5 is the true median of 512..1023.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 767.5);
}

TEST(Histogram, ObservedExtremesTightenBucketEdges) {
  // A value sitting exactly on a bucket's lower edge (8 opens [8,15])
  // must not be smeared across the bucket: min/max tightening collapses
  // the interval to the single observed value.
  Histogram lower_edge;
  for (int i = 0; i < 10; ++i) lower_edge.Record(8);
  EXPECT_DOUBLE_EQ(lower_edge.Percentile(0.50), 8.0);
  EXPECT_DOUBLE_EQ(lower_edge.Percentile(0.99), 8.0);

  // Same for a value on the upper edge (7 closes [4,7]).
  Histogram upper_edge;
  for (int i = 0; i < 10; ++i) upper_edge.Record(7);
  EXPECT_DOUBLE_EQ(upper_edge.Percentile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(upper_edge.Percentile(0.99), 7.0);
}

TEST(Histogram, P95SitsOnTheBodyTailBoundary) {
  // 95 body samples and 5 tail samples: p95's cumulative target lands
  // exactly on the body bucket's edge, p99 must come from the tail.
  Histogram h;
  for (int i = 0; i < 95; ++i) h.Record(10);
  for (int i = 0; i < 5; ++i) h.Record(1000);
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), 15.0);  // upper bound of [8,15]
  EXPECT_GT(h.Percentile(0.99), 500.0);
  EXPECT_LE(h.Percentile(0.99), 1000.0);
  EXPECT_LE(h.Percentile(0.90), 15.0);
}

// --------------------------------------------------------- Tracer threading

TEST(Tracer, AssignsOneDenseLanePerThread) {
  Tracer tracer;
  {
    ScopedSpan fg(&tracer, "foreground");
  }
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&tracer, i] {
      ScopedSpan span(&tracer, i == 0 ? "worker-a" : "worker-b");
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(tracer.thread_count(), 3);
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  int foreground_tid = -1;
  std::vector<int> tids;
  for (const SpanRecord& span : spans) {
    if (span.name == "foreground") foreground_tid = span.tid;
    tids.push_back(span.tid);
  }
  // The foreground thread recorded first, so it owns lane 0; the worker
  // lanes are dense and distinct.
  EXPECT_EQ(foreground_tid, 0);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(tids, (std::vector<int>{0, 1, 2}));
}

TEST(Tracer, NestingIsPerThreadNotGlobal) {
  // A span opened on another thread while the foreground has one open
  // must become a root of its own lane, not a child across threads.
  Tracer tracer;
  int64_t outer = tracer.BeginSpan("outer");
  std::thread([&tracer] { ScopedSpan span(&tracer, "other-lane"); }).join();
  tracer.EndSpan(outer);
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& span : spans) {
    if (span.name == "other-lane") {
      EXPECT_EQ(span.parent_id, -1);
      EXPECT_EQ(span.depth, 0);
      EXPECT_NE(span.tid, 0);
    }
  }
}

// ------------------------------------------------------------- TelemetryHub

class CaptureSink final : public TimelineSink {
 public:
  explicit CaptureSink(std::vector<TelemetrySample>* out) : out_(out) {}
  void OnSample(const TelemetrySample& sample) override {
    out_->push_back(sample);
  }

 private:
  std::vector<TelemetrySample>* out_;
};

TEST(TelemetryHub, PublishStampsFansOutAndRetains) {
  TelemetryHub hub;
  std::vector<TelemetrySample> seen;
  hub.AddSink(std::make_unique<CaptureSink>(&seen));

  TelemetrySample sample;
  sample.gauges.emplace_back("runs_live", 3.0);
  hub.Publish(sample);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_GE(seen[0].t_seconds, 0.0);  // stamped on publish
  EXPECT_DOUBLE_EQ(seen[0].GaugeOr("runs_live", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(seen[0].GaugeOr("absent_gauge", -1.0), -1.0);

  std::vector<TelemetrySample> retained = hub.samples();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_DOUBLE_EQ(retained[0].GaugeOr("runs_live", -1.0), 3.0);
  EXPECT_EQ(hub.dropped_samples(), 0u);
}

TEST(TelemetryHub, SamplerStopIsIdempotentAndTakesFinalSample) {
  TelemetryHub hub;
  std::atomic<int> probe_calls{0};
  hub.StartSampler(
      [&probe_calls](TelemetrySample* sample) {
        sample->gauges.emplace_back("probe_calls",
                                    static_cast<double>(++probe_calls));
      },
      1);
  EXPECT_TRUE(hub.sampling());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hub.StopSampler();
  EXPECT_FALSE(hub.sampling());
  hub.StopSampler();  // idempotent

  std::vector<TelemetrySample> samples = hub.samples();
  // Even a sub-interval run gets the final on-exit sample.
  ASSERT_GE(samples.size(), 1u);
  EXPECT_EQ(static_cast<int>(samples.size()), probe_calls.load());
  double last_t = -1.0;
  for (const TelemetrySample& sample : samples) {
    EXPECT_GE(sample.t_seconds, last_t);
    last_t = sample.t_seconds;
    EXPECT_GT(sample.GaugeOr("probe_calls", 0.0), 0.0);
  }
}

TEST(TelemetryHub, RetentionCapDropsSamplesButStreamContinues) {
  TelemetryHub hub;
  std::vector<TelemetrySample> seen;
  hub.AddSink(std::make_unique<CaptureSink>(&seen));
  const size_t extra = 5;
  for (size_t i = 0; i < TelemetryHub::kMaxRetainedSamples + extra; ++i) {
    hub.Publish(TelemetrySample{});
  }
  EXPECT_EQ(hub.samples().size(), TelemetryHub::kMaxRetainedSamples);
  EXPECT_EQ(hub.dropped_samples(), extra);
  // The live sinks saw every sample; only retention is bounded.
  EXPECT_EQ(seen.size(), TelemetryHub::kMaxRetainedSamples + extra);
}

// ------------------------------------------------------- ChromeTraceExporter

TEST(ChromeTraceExporter, SessionsAndCounterTracksGetDistinctPids) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "sort");
    std::thread([&tracer] { ScopedSpan w(&tracer, "spill"); }).join();
  }
  std::vector<TelemetrySample> samples(2);
  samples[0].t_seconds = 0.0;
  samples[0].gauges.emplace_back("budget_used_blocks", 4.0);
  samples[1].t_seconds = 0.001;
  samples[1].gauges.emplace_back("budget_used_blocks", 7.0);

  ChromeTraceExporter exporter;
  int session_pid = exporter.AddSession("job", tracer);
  int counter_pid =
      exporter.AddCounterTrack("env gauges", samples, tracer.epoch());
  EXPECT_NE(session_pid, counter_pid);

  std::string json = exporter.ToJsonString();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Process/thread naming metadata, spans, and counter series all present.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"job\""), std::string::npos);
  EXPECT_NE(json.find("\"env gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"sort\""), std::string::npos);
  EXPECT_NE(json.find("\"spill\""), std::string::npos);
  EXPECT_NE(json.find("budget_used_blocks"), std::string::npos);
}

TEST(ChromeTraceExporter, EmptyTracerStillYieldsAValidArray) {
  Tracer tracer;
  ChromeTraceExporter exporter;
  exporter.AddSession("idle", tracer);
  std::string json = exporter.ToJsonString();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"idle\""), std::string::npos);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
