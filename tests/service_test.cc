// The nexsortd service layer, minus the socket (service_socket_test.cc):
// wire parsing, the deterministic scheduler/admission pair, crash-safe
// scratch hygiene, session cancellation, and the in-process SortService
// end to end.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/nexsort.h"
#include "core/order_spec_parse.h"
#include "env/sort_env.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "merge/batch_update.h"
#include "merge/structural_merge.h"
#include "service/scheduler.h"
#include "service/service.h"
#include "service/wire.h"
#include "tests/test_util.h"
#include "util/cancellation.h"

namespace nexsort {
namespace {

using ::nexsort::testing::Env;

// ---------------------------------------------------------------- wire --

TEST(ServiceWire, ParsesScalarsAndContainers) {
  auto parsed = JsonValue::Parse(
      R"({"op":"submit","priority":-3,"ratio":1.5,"flag":true,)"
      R"("none":null,"list":[1,"two",false]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& value = parsed.value();
  EXPECT_EQ(value.GetString("op"), "submit");
  EXPECT_EQ(value.GetInt("priority"), -3);
  EXPECT_DOUBLE_EQ(value.GetDouble("ratio"), 1.5);
  EXPECT_TRUE(value.GetBool("flag"));
  ASSERT_NE(value.Find("none"), nullptr);
  EXPECT_TRUE(value.Find("none")->is_null());
  const JsonValue* list = value.Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array_items().size(), 3u);
  EXPECT_EQ(list->array_items()[1].string_value(), "two");
}

TEST(ServiceWire, DecodesEscapesIncludingSurrogatePairs) {
  auto parsed = JsonValue::Parse(
      R"({"s":"a\nb\t\"q\" \u0041 \ud83d\ude00"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().GetString("s"),
            "a\nb\t\"q\" A \xF0\x9F\x98\x80");
}

TEST(ServiceWire, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":\"unterminated}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":nul}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1e}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"s\":\"\\ud800\"}").ok());  // unpaired
}

TEST(ServiceWire, TypedAccessorsFallBackOnMissingOrMistyped) {
  auto parsed = JsonValue::Parse(R"({"n":3,"s":"x"})");
  ASSERT_TRUE(parsed.ok());
  const JsonValue& value = parsed.value();
  EXPECT_EQ(value.GetString("n", "fb"), "fb");   // number, not string
  EXPECT_EQ(value.GetUint("s", 7), 7u);          // string, not number
  EXPECT_EQ(value.GetUint("missing", 9), 9u);
  EXPECT_TRUE(value.GetBool("missing", true));
}

TEST(ServiceWire, ReserializationRoundTripsByteIdentically) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-7})";
  auto first = JsonValue::Parse(text);
  ASSERT_TRUE(first.ok());
  std::string emitted = first.value().ToJsonString();
  auto second = JsonValue::Parse(emitted);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(emitted, second.value().ToJsonString());
  EXPECT_EQ(emitted, text);
}

// ----------------------------------------------------------- scheduler --

QueuedJob Job(uint64_t id, const std::string& tenant, int32_t priority = 0,
              uint64_t bytes = 1) {
  QueuedJob job;
  job.job_id = id;
  job.tenant = tenant;
  job.priority = priority;
  job.bytes = bytes;
  return job;
}

TEST(FairScheduler, FifoWithinOneTenant) {
  FairScheduler scheduler({});
  for (uint64_t id = 1; id <= 3; ++id) {
    NEX_ASSERT_OK(scheduler.Enqueue(Job(id, "a")));
  }
  QueuedJob out;
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(scheduler.PickNext(&out));
    EXPECT_EQ(out.job_id, id);
    scheduler.OnComplete("a", out.bytes);
  }
  EXPECT_FALSE(scheduler.PickNext(&out));
  EXPECT_EQ(scheduler.dispatched(), 3u);
}

TEST(FairScheduler, PriorityBeforeArrivalWithinTenant) {
  FairSchedulerOptions scheduler_options;
  scheduler_options.default_quota.max_in_flight = 10;
  FairScheduler scheduler(scheduler_options);
  NEX_ASSERT_OK(scheduler.Enqueue(Job(1, "a", /*priority=*/0)));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(2, "a", /*priority=*/5)));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(3, "a", /*priority=*/5)));
  QueuedJob out;
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 2u);  // highest priority, earliest arrival
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 3u);
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 1u);
}

TEST(FairScheduler, RejectsBeyondDepthWithRetryHint) {
  FairSchedulerOptions options;
  options.max_queue_depth = 2;
  options.retry_after_ms = 125;
  FairScheduler scheduler(options);
  NEX_ASSERT_OK(scheduler.Enqueue(Job(1, "a")));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(2, "b")));
  uint64_t retry = 0;
  Status rejected = scheduler.Enqueue(Job(3, "c"), &retry);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(retry, 125u);
  EXPECT_EQ(scheduler.rejected(), 1u);
  EXPECT_EQ(scheduler.depth(), 2u);
}

TEST(FairScheduler, WeightedShareIsProportional) {
  FairSchedulerOptions options;
  options.default_quota.max_in_flight = 100;
  FairScheduler scheduler(options);
  TenantQuota heavy = options.default_quota;
  heavy.weight = 2.0;
  scheduler.SetQuota("a", heavy);
  for (uint64_t id = 0; id < 20; ++id) {
    NEX_ASSERT_OK(scheduler.Enqueue(Job(100 + id, "a", 0, /*bytes=*/6)));
    NEX_ASSERT_OK(scheduler.Enqueue(Job(200 + id, "b", 0, /*bytes=*/6)));
  }
  // Every job charges 6 bytes: tenant a's pass advances 3 per dispatch,
  // b's 6 — over any window a receives twice b's dispatches.
  uint64_t from_a = 0;
  QueuedJob out;
  for (int i = 0; i < 18; ++i) {
    ASSERT_TRUE(scheduler.PickNext(&out));
    if (out.tenant == "a") ++from_a;
    scheduler.OnComplete(out.tenant, out.bytes);
  }
  EXPECT_EQ(from_a, 12u);
}

TEST(FairScheduler, LateTenantCannotMonopolizeWithBankedPass) {
  FairSchedulerOptions options;
  options.default_quota.max_in_flight = 100;
  FairScheduler scheduler(options);
  // Tenant a works alone for a while and accumulates pass.
  for (uint64_t id = 0; id < 8; ++id) {
    NEX_ASSERT_OK(scheduler.Enqueue(Job(100 + id, "a", 0, /*bytes=*/10)));
  }
  QueuedJob out;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.PickNext(&out));
    EXPECT_EQ(out.tenant, "a");
    scheduler.OnComplete("a", out.bytes);
  }
  // b arrives with pass 0 banked; reactivation snaps it to the floor, so
  // dispatch alternates instead of handing b six slots in a row.
  for (uint64_t id = 0; id < 4; ++id) {
    NEX_ASSERT_OK(scheduler.Enqueue(Job(200 + id, "b", 0, /*bytes=*/10)));
  }
  std::vector<std::string> sequence;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(scheduler.PickNext(&out));
    sequence.push_back(out.tenant);
    scheduler.OnComplete(out.tenant, out.bytes);
  }
  // b's pass snaps to a's (the floor), so they tie and alternate — the
  // equal-pass tie resolves to "a" by name order.
  EXPECT_EQ(sequence,
            (std::vector<std::string>{"a", "b", "a", "b"}));
}

TEST(FairScheduler, MaxInFlightGatesDispatch) {
  FairSchedulerOptions options;
  options.default_quota.max_in_flight = 1;
  FairScheduler scheduler(options);
  NEX_ASSERT_OK(scheduler.Enqueue(Job(1, "a")));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(2, "a")));
  QueuedJob out;
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 1u);
  EXPECT_FALSE(scheduler.HasEligible());
  EXPECT_FALSE(scheduler.PickNext(&out));
  scheduler.OnComplete("a", out.bytes);
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 2u);
}

TEST(FairScheduler, ByteQuotaGatesDispatchButNeverStrandsOversizedJobs) {
  FairSchedulerOptions options;
  options.default_quota.max_in_flight = 10;
  options.default_quota.max_bytes_in_flight = 100;
  FairScheduler scheduler(options);
  NEX_ASSERT_OK(scheduler.Enqueue(Job(1, "a", 0, /*bytes=*/60)));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(2, "a", 0, /*bytes=*/60)));
  QueuedJob out;
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_FALSE(scheduler.PickNext(&out)) << "60 + 60 > 100";
  scheduler.OnComplete("a", 60);
  ASSERT_TRUE(scheduler.PickNext(&out));
  scheduler.OnComplete("a", 60);

  // A job bigger than the whole quota still runs when the tenant is idle.
  NEX_ASSERT_OK(scheduler.Enqueue(Job(3, "a", 0, /*bytes=*/500)));
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 3u);
}

TEST(FairScheduler, RemoveDropsQueuedJobOnly) {
  FairScheduler scheduler({});
  NEX_ASSERT_OK(scheduler.Enqueue(Job(1, "a")));
  NEX_ASSERT_OK(scheduler.Enqueue(Job(2, "a")));
  EXPECT_TRUE(scheduler.Remove(1));
  EXPECT_FALSE(scheduler.Remove(1));  // already gone
  EXPECT_EQ(scheduler.depth(), 1u);
  QueuedJob out;
  ASSERT_TRUE(scheduler.PickNext(&out));
  EXPECT_EQ(out.job_id, 2u);
  EXPECT_FALSE(scheduler.Remove(2));  // dispatched, not queued
}

// ----------------------------------------------------------- admission --

TEST(AdmissionController, LedgerCapsConcurrentGrants) {
  MemoryBudget budget(64);
  AdmissionController admission(&budget, /*grant_blocks=*/10,
                                /*admissible_blocks=*/30);
  NEX_ASSERT_OK(admission.Admit(1));
  NEX_ASSERT_OK(admission.Admit(2));
  EXPECT_TRUE(admission.HasCapacity());
  NEX_ASSERT_OK(admission.Admit(3));
  EXPECT_FALSE(admission.HasCapacity());
  EXPECT_FALSE(admission.Admit(4).ok());
  EXPECT_EQ(admission.ledger_blocks(), 30u);
  admission.OnJobFinish(2);
  NEX_ASSERT_OK(admission.Admit(4));
}

TEST(AdmissionController, PhysicalHoldSpansAdmitToStart) {
  MemoryBudget budget(64);
  AdmissionController admission(&budget, /*grant_blocks=*/10,
                                /*admissible_blocks=*/30);
  NEX_ASSERT_OK(admission.Admit(1));
  EXPECT_EQ(budget.used_blocks(), 10u) << "grant physically reserved";
  admission.OnJobStart(1);
  EXPECT_EQ(budget.used_blocks(), 0u)
      << "job now acquires its own blocks; the hold is released";
  EXPECT_EQ(admission.ledger_blocks(), 10u) << "entitlement outlives start";
  admission.OnJobFinish(1);
  EXPECT_EQ(admission.ledger_blocks(), 0u);
  EXPECT_EQ(budget.used_blocks(), 0u);
}

// ------------------------------------------------------------- scratch --

TEST(ScratchNamespace, ScopedNamesAndRemoveAll) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "nexsort_scratch_names";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ScratchNamespace scratch(dir.string(), "svc", /*instance=*/7);
  std::string a = scratch.NewPath("env device");  // label sanitized
  std::string b = scratch.NewPath("out");
  EXPECT_NE(a, b);
  EXPECT_NE(a.find("svc.7.0."), std::string::npos) << a;
  EXPECT_EQ(a.find(' '), std::string::npos) << a;
  EXPECT_NE(a.rfind(".scratch"), std::string::npos);
  std::ofstream(a) << "x";
  std::ofstream(b) << "y";
  scratch.RemoveAll();
  EXPECT_FALSE(std::filesystem::exists(a));
  EXPECT_FALSE(std::filesystem::exists(b));
  std::filesystem::remove_all(dir);
}

TEST(ScratchNamespace, SweepReclaimsCrashedInstancesOnly) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "nexsort_scratch_sweep";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // A prior instance (pid 41) crashed mid-job: its scratch files survive
  // it verbatim — no destructor ran.
  for (const char* name :
       {"svc.41.0.device.scratch", "svc.41.1.out.scratch",
        "svc.41.2.stage.scratch"}) {
    std::ofstream(dir / name) << "orphan";
  }
  // Unrelated files in the same directory must never be touched.
  std::ofstream(dir / "keep.xml") << "keep";
  std::ofstream(dir / "other.41.0.x.scratch") << "different prefix";

  // The restarted daemon (pid 42) sweeps before creating its own scratch.
  auto swept = ScratchNamespace::SweepOrphans(dir.string(), "svc",
                                              /*exclude_instance=*/42);
  ASSERT_TRUE(swept.ok()) << swept.status().ToString();
  EXPECT_EQ(swept.value(), 3u);
  EXPECT_FALSE(std::filesystem::exists(dir / "svc.41.0.device.scratch"));
  EXPECT_TRUE(std::filesystem::exists(dir / "keep.xml"));
  EXPECT_TRUE(std::filesystem::exists(dir / "other.41.0.x.scratch"));

  // The live instance's own files are excluded from its sweep.
  ScratchNamespace live(dir.string(), "svc", /*instance=*/42);
  std::string mine = live.NewPath("live");
  std::ofstream(mine) << "live";
  auto again = ScratchNamespace::SweepOrphans(dir.string(), "svc",
                                              /*exclude_instance=*/42);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  EXPECT_TRUE(std::filesystem::exists(mine));
  live.RemoveAll();
  std::filesystem::remove_all(dir);
}

TEST(ScratchNamespace, SweepOfMissingDirectoryIsZeroNotError) {
  auto swept = ScratchNamespace::SweepOrphans(
      (std::filesystem::temp_directory_path() / "nexsort_never_made")
          .string(),
      "svc", 1);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 0u);
}

// -------------------------------------------------------- cancellation --

std::string ManyElements(int count) {
  std::string xml = "<list>";
  for (int i = count; i > 0; --i) {
    xml += "<item id=\"" + std::to_string(i) +
           "\"><payload>abcdefghijklmnopqrstuvwxyz0123456789</payload>"
           "</item>";
  }
  xml += "</list>";
  return xml;
}

/// Flips a CancellationToken after delivering `trip_bytes` — a
/// deterministic way to cancel mid-run-formation with no second thread.
class CancellingSource final : public ByteSource {
 public:
  CancellingSource(std::string_view data, size_t trip_bytes,
                   std::shared_ptr<CancellationToken> token)
      : data_(data), trip_bytes_(trip_bytes), token_(std::move(token)) {}

  Status Read(char* buf, size_t n, size_t* out) override {
    size_t left = data_.size() - pos_;
    *out = std::min(n, left);
    std::memcpy(buf, data_.data() + pos_, *out);
    pos_ += *out;
    if (pos_ >= trip_bytes_) token_->Cancel();
    return Status::OK();
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  size_t trip_bytes_;
  std::shared_ptr<CancellationToken> token_;
};

TEST(SessionCancellation, MidRunFormationUnwindReleasesEverything) {
  // Small blocks + small pinned sort memory force the external path with
  // several spills over this input.
  SortEnvOptions options;
  options.block_size = 1024;
  options.memory_blocks = 24;
  options.sort_memory_blocks = 8;
  Env env(options);
  const uint64_t baseline_used = env.budget()->used_blocks();

  std::string xml = ManyElements(1200);
  SortEnv::Session session = env.get()->NewSession();
  auto token = session.cancellation_handle();
  NexSortOptions sort_options;
  sort_options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  NexSorter sorter(std::move(session), sort_options);

  // Trip at half the document: run formation is mid-flight.
  CancellingSource source(xml, xml.size() / 2, token);
  std::string out;
  StringByteSink sink(&out);
  Status status = sorter.Sort(&source, &sink);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  // The RAII unwind must return every block — budget back to baseline
  // means stacks, sort buffers, and stream buffers were all released.
  EXPECT_EQ(env.budget()->used_blocks(), baseline_used);
  EXPECT_EQ(env.budget()->release_underflows(), 0u);
}

TEST(SessionCancellation, PreCancelledSessionFailsFastAndClean) {
  Env env(1024, 24);
  const uint64_t baseline_used = env.budget()->used_blocks();
  SortEnv::Session session = env.get()->NewSession();
  session.cancellation_handle()->Cancel();
  NexSortOptions sort_options;
  sort_options.order = OrderSpec::ByAttribute("id", /*numeric=*/false);
  NexSorter sorter(std::move(session), sort_options);
  std::string xml = ManyElements(200);
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status status = sorter.Sort(&source, &sink);
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_EQ(env.budget()->used_blocks(), baseline_used);
}

// --------------------------------------------------------- sortservice --

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.env.block_size = 1024;
  options.env.memory_blocks = 48;
  options.executors = 2;
  return options;
}

std::string DirectSort(const std::string& xml, const std::string& order,
                       const SortEnvOptions& service_env) {
  // A solo env configured exactly like the service's shared one: same
  // block size, budget, and (crucially) the same pinned
  // sort_memory_blocks — the byte-identity contract.
  SortEnvOptions options;
  options.block_size = service_env.block_size;
  options.memory_blocks = service_env.memory_blocks;
  options.sort_memory_blocks = service_env.sort_memory_blocks;
  Env env(options);
  auto spec = ParseOrderSpec(order);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  NexSortOptions sort_options;
  sort_options.order = *spec;
  NexSorter sorter(env.get(), sort_options);
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status status = sorter.Sort(&source, &sink);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(SortService, SortJobMatchesDirectRunByteForByte) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();

  std::string xml = ManyElements(400);
  JobRequest request;
  request.order_text = "item:attr(id)n";
  request.input_text = xml;
  request.return_output = true;
  uint64_t job_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
  auto done = service.Wait(job_id);
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  ASSERT_EQ(done.value().state, JobStatus::State::kDone)
      << done.value().error;
  EXPECT_TRUE(done.value().has_session);
  EXPECT_GT(done.value().output_bytes, 0u);
  auto output = service.TakeOutput(job_id);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  EXPECT_EQ(output.value(),
            DirectSort(xml, "item:attr(id)n", service.env()->options()));
  EXPECT_FALSE(service.TakeOutput(job_id).ok()) << "output moves out once";
}

// A streamed sort job (pull-based SortedStream output path) must produce
// the same bytes as an eager one, while additionally reporting time to
// first byte. The two jobs run concurrently on the two executors.
TEST(SortService, StreamedSortJobMatchesEagerByteForByte) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();

  std::string xml = ManyElements(400);
  JobRequest eager;
  eager.order_text = "item:attr(id)n";
  eager.input_text = xml;
  eager.return_output = true;
  JobRequest streamed = eager;
  streamed.stream = true;
  uint64_t eager_id = 0;
  uint64_t streamed_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(eager), &eager_id));
  NEX_ASSERT_OK(service.Submit(std::move(streamed), &streamed_id));

  auto eager_done = service.Wait(eager_id);
  auto streamed_done = service.Wait(streamed_id);
  ASSERT_TRUE(eager_done.ok()) << eager_done.status().ToString();
  ASSERT_TRUE(streamed_done.ok()) << streamed_done.status().ToString();
  ASSERT_EQ(eager_done.value().state, JobStatus::State::kDone)
      << eager_done.value().error;
  ASSERT_EQ(streamed_done.value().state, JobStatus::State::kDone)
      << streamed_done.value().error;

  EXPECT_FALSE(eager_done.value().streamed);
  EXPECT_TRUE(streamed_done.value().streamed);
  EXPECT_GE(streamed_done.value().time_to_first_byte_ms, 0.0)
      << "a completed streamed job must have seen its first byte";

  auto eager_out = service.TakeOutput(eager_id);
  auto streamed_out = service.TakeOutput(streamed_id);
  ASSERT_TRUE(eager_out.ok()) << eager_out.status().ToString();
  ASSERT_TRUE(streamed_out.ok()) << streamed_out.status().ToString();
  EXPECT_EQ(streamed_out.value(), eager_out.value());
  EXPECT_EQ(eager_out.value(),
            DirectSort(xml, "item:attr(id)n", service.env()->options()));
}

TEST(SortService, StreamedJobCancelIsTerminalAndClean) {
  ServiceOptions options = SmallServiceOptions();
  options.executors = 1;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();

  JobRequest request;
  request.order_text = "item:attr(id)n";
  request.input_text = ManyElements(3000);  // big enough to outlive Cancel
  request.return_output = true;
  request.stream = true;
  uint64_t job_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
  NEX_ASSERT_OK(service.Cancel(job_id));
  auto done = service.Wait(job_id);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().terminal());
  EXPECT_TRUE(done.value().streamed);
  if (done.value().state == JobStatus::State::kCancelled) {
    EXPECT_FALSE(done.value().error.empty());
    EXPECT_FALSE(service.TakeOutput(job_id).ok());
  } else {
    EXPECT_EQ(done.value().state, JobStatus::State::kDone);
  }
}

TEST(SortService, StreamRejectedForNonSortJobs) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok());
  JobRequest request;
  request.kind = JobRequest::Kind::kMerge;
  request.order_text = "*:attr(id)n";
  request.input_texts = {"<l><e id=\"1\"/></l>", "<l><e id=\"2\"/></l>"};
  request.stream = true;
  uint64_t job_id = 0;
  EXPECT_FALSE(service_or.value()->Submit(std::move(request), &job_id).ok())
      << "stream mode applies to sort jobs only";
}

TEST(SortService, MergeAndBatchUpdateJobsMatchDirectRuns) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();
  auto spec = ParseOrderSpec("*:attr(id)n");
  ASSERT_TRUE(spec.ok());

  const std::string left =
      "<l><e id=\"1\"/><e id=\"3\"/><e id=\"5\"/></l>";
  const std::string right =
      "<l><e id=\"2\"/><e id=\"4\"/><e id=\"6\"/></l>";
  JobRequest merge;
  merge.kind = JobRequest::Kind::kMerge;
  merge.order_text = "*:attr(id)n";
  merge.input_texts = {left, right};
  merge.return_output = true;
  uint64_t merge_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(merge), &merge_id));
  auto merge_done = service.Wait(merge_id);
  ASSERT_TRUE(merge_done.ok());
  ASSERT_EQ(merge_done.value().state, JobStatus::State::kDone)
      << merge_done.value().error;
  auto merged = service.TakeOutput(merge_id);
  ASSERT_TRUE(merged.ok());

  std::string direct_merged;
  {
    StringByteSource a(left), b(right);
    std::vector<ByteSource*> sources{&a, &b};
    StringByteSink sink(&direct_merged);
    MergeOptions merge_options;
    merge_options.order = *spec;
    NEX_ASSERT_OK(StructuralMergeMany(sources, &sink, merge_options));
  }
  EXPECT_EQ(merged.value(), direct_merged);

  const std::string base =
      "<l><e id=\"1\" v=\"a\"/><e id=\"3\" v=\"a\"/></l>";
  const std::string updates = "<l><e id=\"2\" v=\"new\"/></l>";
  JobRequest update;
  update.kind = JobRequest::Kind::kBatchUpdate;
  update.order_text = "*:attr(id)n";
  update.input_text = base;
  update.updates_text = updates;
  update.return_output = true;
  uint64_t update_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(update), &update_id));
  auto update_done = service.Wait(update_id);
  ASSERT_TRUE(update_done.ok());
  ASSERT_EQ(update_done.value().state, JobStatus::State::kDone)
      << update_done.value().error;
  auto updated = service.TakeOutput(update_id);
  ASSERT_TRUE(updated.ok());

  std::string direct_updated;
  {
    Env env(1024, 32);
    StringByteSource base_source(base);
    StringByteSink sink(&direct_updated);
    BatchUpdateOptions update_options;
    update_options.order = *spec;
    NEX_ASSERT_OK(ApplyBatchUpdates(&base_source, updates, env.get(), &sink,
                                    update_options));
  }
  EXPECT_EQ(updated.value(), direct_updated);
}

TEST(SortService, StagesOutputAtomicallyAndCleansScratch) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "nexsort_service_stage";
  std::filesystem::remove_all(dir);

  ServiceOptions options = SmallServiceOptions();
  options.scratch_dir = dir.string();
  options.instance = 77;
  std::filesystem::path out_path = dir / "result.xml";
  {
    auto service_or = SortService::Create(std::move(options));
    ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
    auto& service = *service_or.value();
    JobRequest request;
    request.order_text = "item:attr(id)n";
    request.input_text = ManyElements(50);
    request.output_path = out_path.string();
    uint64_t job_id = 0;
    NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
    auto done = service.Wait(job_id);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done.value().state, JobStatus::State::kDone)
        << done.value().error;
    ASSERT_TRUE(std::filesystem::exists(out_path));
  }
  // After shutdown the only file left is the delivered output — every
  // *.scratch (env device, staging) is gone.
  size_t scratch_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().string().find(".scratch") != std::string::npos) {
      ++scratch_files;
    }
  }
  EXPECT_EQ(scratch_files, 0u);
  std::ifstream result(out_path);
  std::string content((std::istreambuf_iterator<char>(result)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<item id=\"1\">"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SortService, CancelDrivesJobTerminalWithoutOutput) {
  ServiceOptions options = SmallServiceOptions();
  options.executors = 1;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();

  JobRequest request;
  request.order_text = "item:attr(id)n";
  request.input_text = ManyElements(3000);  // big enough to outlive Cancel
  request.return_output = true;
  uint64_t job_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
  NEX_ASSERT_OK(service.Cancel(job_id));
  auto done = service.Wait(job_id);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done.value().terminal());
  // The cancel may race job completion; whichever way it lands the record
  // must be coherent.
  if (done.value().state == JobStatus::State::kCancelled) {
    EXPECT_FALSE(done.value().error.empty());
    EXPECT_FALSE(service.TakeOutput(job_id).ok());
  } else {
    EXPECT_EQ(done.value().state, JobStatus::State::kDone);
  }
  NEX_ASSERT_OK(service.Cancel(job_id));  // idempotent on terminal jobs
}

TEST(SortService, CancelUnknownJobFails) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok());
  EXPECT_FALSE(service_or.value()->Cancel(999).ok());
}

TEST(SortService, GrantArithmeticAndDoubleBufferPinning) {
  ServiceOptions options;
  options.env.block_size = 1024;
  options.env.memory_blocks = 64;
  options.env.cache = {.frames = 16};
  options.executors = 3;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();
  // admissible = 64 - 16 cache frames = 48; grant = 48 / 3 = 16;
  // pinned sort memory = grant - 4 overhead blocks.
  EXPECT_EQ(service.grant_blocks(), 16u);
  EXPECT_EQ(service.sort_memory_blocks(), 12u);
  EXPECT_FALSE(service.env()->options().parallel.double_buffer)
      << "an opportunistic second buffer would overrun the job's grant";
}

TEST(SortService, CreateRejectsBudgetTooSmallForExecutors) {
  ServiceOptions options;
  options.env.block_size = 1024;
  options.env.memory_blocks = 20;
  options.executors = 4;  // 5-block grants cannot host 8-block sorts
  EXPECT_FALSE(SortService::Create(std::move(options)).ok());
}

TEST(SortService, SessionStatsSumExactlyToEnvTotals) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    JobRequest request;
    request.order_text = "item:attr(id)n";
    request.input_text = ManyElements(300 + 30 * i);
    uint64_t job_id = 0;
    NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
    ids.push_back(job_id);
  }
  for (uint64_t id : ids) {
    auto done = service.Wait(id);
    ASSERT_TRUE(done.ok());
    ASSERT_EQ(done.value().state, JobStatus::State::kDone)
        << done.value().error;
  }
  uint64_t session_reads = 0;
  uint64_t session_writes = 0;
  for (const SessionStats& session : service.env()->session_stats()) {
    session_reads += session.io.reads.load();
    session_writes += session.io.writes.load();
  }
  const IoStats& env_io = service.env()->device()->stats();
  EXPECT_EQ(session_reads, env_io.reads.load());
  EXPECT_EQ(session_writes, env_io.writes.load());
  EXPECT_GT(session_writes, 0u) << "external sorts must have spilled";
}

TEST(SortService, StatsJsonIsWellFormedAndConsistent) {
  auto service_or = SortService::Create(SmallServiceOptions());
  ASSERT_TRUE(service_or.ok()) << service_or.status().ToString();
  auto& service = *service_or.value();
  JobRequest request;
  request.order_text = "item:attr(id)n";
  request.input_text = ManyElements(100);
  uint64_t job_id = 0;
  NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
  auto done = service.Wait(job_id);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.value().state, JobStatus::State::kDone);

  auto stats = JsonValue::Parse(service.StatsJson());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const JsonValue& doc = stats.value();
  EXPECT_EQ(doc.GetString("schema"), "nexsortd-stats-v1");
  ASSERT_NE(doc.Find("env"), nullptr);
  ASSERT_NE(doc.Find("sessions"), nullptr);
  EXPECT_TRUE(doc.Find("sessions")->is_array());
  EXPECT_GE(doc.Find("sessions")->array_items().size(), 1u);
  const JsonValue* queue = doc.Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->GetUint("dispatched"), 1u);
  EXPECT_EQ(queue->GetUint("depth"), 0u);
  const JsonValue* admission = doc.Find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->GetUint("grant_blocks"), service.grant_blocks());
  EXPECT_EQ(admission->GetUint("ledger_blocks"), 0u);
  const JsonValue* jobs = doc.Find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->array_items().size(), 1u);
  EXPECT_EQ(jobs->array_items()[0].GetString("state"), "done");
  const JsonValue* tenants = doc.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->array_items().size(), 1u);
  EXPECT_EQ(tenants->array_items()[0].GetString("tenant"), "default");
}

TEST(SortService, DrainShutdownFinishesQueuedJobs) {
  ServiceOptions options = SmallServiceOptions();
  options.executors = 1;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok());
  auto& service = *service_or.value();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    JobRequest request;
    request.order_text = "item:attr(id)n";
    request.input_text = ManyElements(150);
    uint64_t job_id = 0;
    NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
    ids.push_back(job_id);
  }
  service.Shutdown(/*cancel_inflight=*/false);
  for (uint64_t id : ids) {
    auto done = service.GetJob(id);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done.value().state, JobStatus::State::kDone)
        << done.value().error;
  }
  uint64_t dummy = 0;
  EXPECT_FALSE(service.Submit(JobRequest{}, &dummy).ok())
      << "no submissions after shutdown";
}

TEST(SortService, CancelShutdownTerminatesEverything) {
  ServiceOptions options = SmallServiceOptions();
  options.executors = 1;
  auto service_or = SortService::Create(std::move(options));
  ASSERT_TRUE(service_or.ok());
  auto& service = *service_or.value();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    JobRequest request;
    request.order_text = "item:attr(id)n";
    request.input_text = ManyElements(2000);
    uint64_t job_id = 0;
    NEX_ASSERT_OK(service.Submit(std::move(request), &job_id));
    ids.push_back(job_id);
  }
  service.Shutdown(/*cancel_inflight=*/true);
  for (uint64_t id : ids) {
    auto done = service.GetJob(id);
    ASSERT_TRUE(done.ok());
    EXPECT_TRUE(done.value().terminal());
  }
}

}  // namespace
}  // namespace nexsort
