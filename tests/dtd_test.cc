// DTD parsing, dictionary seeding, and structural validation.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dtd.h"

namespace nexsort {
namespace testing {
namespace {

const char kCompanyDtd[] = R"(
  <!ELEMENT company (region*)>
  <!ELEMENT region (branch*)>
  <!ELEMENT branch (employee*)>
  <!ELEMENT employee (name?, phone?)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT phone (#PCDATA)>
  <!ATTLIST region name CDATA #REQUIRED>
  <!ATTLIST branch name CDATA #REQUIRED>
  <!ATTLIST employee ID CDATA #REQUIRED
                     status (active|retired) #IMPLIED>
)";

TEST(Dtd, ParsesDeclarations) {
  auto dtd = Dtd::Parse(kCompanyDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->element_count(), 6u);

  const DtdElementDecl* employee = dtd->FindElement("employee");
  ASSERT_NE(employee, nullptr);
  EXPECT_EQ(employee->content, DtdElementDecl::Content::kChildren);
  EXPECT_EQ(employee->allowed_children,
            (std::vector<std::string>{"name", "phone"}));

  const DtdElementDecl* name = dtd->FindElement("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->content, DtdElementDecl::Content::kMixed);

  ASSERT_EQ(dtd->attributes().size(), 4u);
  EXPECT_TRUE(dtd->attributes()[0].required);
  EXPECT_EQ(dtd->attributes()[3].type, "(active|retired)");
  EXPECT_FALSE(dtd->attributes()[3].required);
}

TEST(Dtd, ParsesEmptyAndAny) {
  auto dtd = Dtd::Parse("<!ELEMENT br EMPTY><!ELEMENT blob ANY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->FindElement("br")->content, DtdElementDecl::Content::kEmpty);
  EXPECT_EQ(dtd->FindElement("blob")->content, DtdElementDecl::Content::kAny);
}

TEST(Dtd, RejectsMalformed) {
  for (const char* bad :
       {"<!ELEMENT >", "<!ELEMENT a", "<!BOGUS a EMPTY>",
        "<!ELEMENT a EMPTY><!ELEMENT a EMPTY>", "<!ELEMENT a foo>"}) {
    auto dtd = Dtd::Parse(bad);
    EXPECT_FALSE(dtd.ok()) << "accepted: " << bad;
  }
}

TEST(Dtd, SeedsDictionaryWithDeclaredVocabulary) {
  auto dtd = Dtd::Parse(kCompanyDtd);
  ASSERT_TRUE(dtd.ok());
  NameDictionary dictionary;
  dtd->SeedDictionary(&dictionary);
  // 6 element names + attribute names (name, ID, status; "name" collides
  // with the element name) = 6 + 2.
  EXPECT_EQ(dictionary.size(), 8u);
  // Stable small ids in declaration order.
  auto first = dictionary.Lookup(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "company");
}

TEST(Dtd, ValidatesConformingDocument) {
  auto dtd = Dtd::Parse(kCompanyDtd);
  ASSERT_TRUE(dtd.ok());
  auto report = dtd->Validate(
      "<company><region name=\"AC\"><branch name=\"Durham\">"
      "<employee ID=\"323\"><name>Smith</name><phone>5552345</phone>"
      "</employee></branch></region></company>");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->valid) << report->violation;
  EXPECT_EQ(report->elements_checked, 6u);
}

TEST(Dtd, FlagsViolations) {
  auto dtd = Dtd::Parse(kCompanyDtd);
  ASSERT_TRUE(dtd.ok());

  struct Case {
    const char* xml;
    const char* expect;
  };
  for (const Case& c : {
           Case{"<company><intruder/></company>", "undeclared"},
           Case{"<company><branch name=\"x\"></branch></company>",
                "not allowed inside"},
           Case{"<company><region></region></company>",
                "missing required attribute"},
           Case{"<company>loose text</company>", "text not allowed"},
       }) {
    auto report = dtd->Validate(c.xml);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->valid) << c.xml;
    EXPECT_NE(report->violation.find(c.expect), std::string::npos)
        << "got: " << report->violation;
  }
}

TEST(Dtd, EmptyContentRejectsChildren) {
  auto dtd = Dtd::Parse("<!ELEMENT a (b*)><!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  auto bad = dtd->Validate("<a><b><b/></b></a>");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->valid);
  EXPECT_NE(bad->violation.find("EMPTY"), std::string::npos);
  auto good = dtd->Validate("<a><b/><b/></a>");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->valid);
}

TEST(Dtd, MixedContentAllowsTextAndListedChildren) {
  auto dtd = Dtd::Parse("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  auto report = dtd->Validate("<p>hello <em>world</em> again</p>");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid) << report->violation;
}

TEST(Dtd, SortingPreservesValidity) {
  // Sort a conforming document; the result must still conform (NEXSORT
  // permutes sibling lists, which content-model *sets* are closed under).
  auto dtd = Dtd::Parse(kCompanyDtd);
  ASSERT_TRUE(dtd.ok());
  const std::string xml =
      "<company>"
      "<region name=\"NW\"><branch name=\"b2\"></branch>"
      "<branch name=\"b1\"></branch></region>"
      "<region name=\"AC\"></region>"
      "</company>";
  ASSERT_TRUE((*dtd->Validate(xml)).valid);
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("name");
  std::string sorted = NexSortString(xml, options);
  auto report = dtd->Validate(sorted);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid) << report->violation;
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
