// Tests for the generic sorting machinery: key-path encoding order
// properties, the loser tree, and external merge sort under tight budgets.
#include <gtest/gtest.h>

#include <algorithm>

#include "sort/external_merge_sort.h"
#include "sort/key_path.h"
#include "sort/loser_tree.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

std::string Component(std::string_view key, uint64_t seq) {
  std::string out;
  AppendKeyPathComponent(&out, key, seq);
  return out;
}

TEST(KeyPath, ComponentOrderMatchesKeyOrder) {
  EXPECT_LT(Component("a", 5), Component("b", 1));
  EXPECT_LT(Component("a", 1), Component("a", 2));       // seq tiebreak
  EXPECT_LT(Component("a", 9), Component("ab", 0));      // prefix first
  EXPECT_LT(Component("", 0), Component("a", 0));        // empty key first
}

TEST(KeyPath, EmbeddedZeroBytesOrderCorrectly) {
  std::string k1("a\0b", 3);
  std::string k2("a\0c", 3);
  std::string k3("a", 1);
  EXPECT_LT(Component(k1, 0), Component(k2, 0));
  EXPECT_LT(Component(k3, 0), Component(k1, 0));  // "a" < "a\0b"
}

TEST(KeyPath, ParentSortsBeforeDescendants) {
  std::string parent = Component("r", 0);
  std::string child = parent + Component("x", 1);
  std::string grandchild = child + Component("y", 2);
  EXPECT_LT(parent, child);
  EXPECT_LT(child, grandchild);
  // A sibling with a larger key sorts after the whole first subtree.
  std::string sibling = parent + Component("z", 3);
  EXPECT_LT(grandchild, sibling);
}

TEST(KeyPath, DecodeRoundTrip) {
  std::string path;
  AppendKeyPathComponent(&path, "hello", 42);
  AppendKeyPathComponent(&path, std::string("z\0ro", 4), 7);
  std::string_view view = path;
  std::string key;
  uint64_t seq = 0;
  NEX_ASSERT_OK(DecodeKeyPathComponent(&view, &key, &seq));
  EXPECT_EQ(key, "hello");
  EXPECT_EQ(seq, 42u);
  NEX_ASSERT_OK(DecodeKeyPathComponent(&view, &key, &seq));
  EXPECT_EQ(key, std::string("z\0ro", 4));
  EXPECT_EQ(seq, 7u);
  EXPECT_TRUE(view.empty());
}

TEST(KeyPath, DepthCounting) {
  std::string path;
  AppendKeyPathComponent(&path, "a", 1);
  AppendKeyPathComponent(&path, "b", 2);
  AppendKeyPathComponent(&path, "c", 3);
  auto depth = KeyPathDepth(path);
  ASSERT_TRUE(depth.ok());
  EXPECT_EQ(*depth, 3);
  EXPECT_TRUE(KeyPathDepth("garbage").status().IsCorruption() ||
              !KeyPathDepth("garbage").ok());
}

TEST(KeyPath, SortedPathsEqualSortedTuples) {
  // Property: bytewise order of encoded paths == lexicographic order of
  // (key, seq) component tuples.
  Random rng(13);
  struct Item {
    std::vector<std::pair<std::string, uint64_t>> tuple;
    std::string encoded;
  };
  std::vector<Item> items;
  for (int i = 0; i < 300; ++i) {
    Item item;
    int depth = 1 + rng.Uniform(4);
    for (int d = 0; d < depth; ++d) {
      std::string key = rng.Identifier(rng.Uniform(4));
      if (rng.OneIn(5)) key.push_back('\0');
      uint64_t seq = rng.Uniform(5);
      item.tuple.emplace_back(key, seq);
      AppendKeyPathComponent(&item.encoded, key, seq);
    }
    items.push_back(std::move(item));
  }
  auto by_encoded = items;
  std::sort(by_encoded.begin(), by_encoded.end(),
            [](const Item& a, const Item& b) { return a.encoded < b.encoded; });
  auto by_tuple = items;
  std::sort(by_tuple.begin(), by_tuple.end(),
            [](const Item& a, const Item& b) { return a.tuple < b.tuple; });
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(by_encoded[i].tuple, by_tuple[i].tuple) << "at index " << i;
  }
}

// Simple in-memory MergeSource for loser-tree tests.
class VectorSource final : public MergeSource {
 public:
  explicit VectorSource(std::vector<std::string> keys)
      : keys_(std::move(keys)) {}
  bool exhausted() const override { return index_ >= keys_.size(); }
  std::string_view key() const override { return keys_[index_]; }
  Status Advance() override {
    ++index_;
    return Status::OK();
  }

 private:
  std::vector<std::string> keys_;
  size_t index_ = 0;
};

std::vector<std::string> DrainTree(std::vector<std::vector<std::string>> runs) {
  std::vector<std::unique_ptr<VectorSource>> sources;
  std::vector<MergeSource*> raw;
  for (auto& run : runs) {
    sources.push_back(std::make_unique<VectorSource>(std::move(run)));
    raw.push_back(sources.back().get());
  }
  LoserTree tree(std::move(raw));
  EXPECT_TRUE(tree.Init().ok());
  std::vector<std::string> out;
  while (MergeSource* min = tree.Min()) {
    out.emplace_back(min->key());
    EXPECT_TRUE(tree.AdvanceMin().ok());
  }
  return out;
}

TEST(LoserTree, MergesSortedRuns) {
  auto out = DrainTree({{"a", "d", "g"}, {"b", "e"}, {"c", "f", "h", "i"}});
  EXPECT_EQ(out, (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g",
                                           "h", "i"}));
}

TEST(LoserTree, SingleSource) {
  auto out = DrainTree({{"x", "y"}});
  EXPECT_EQ(out, (std::vector<std::string>{"x", "y"}));
}

TEST(LoserTree, EmptySourcesHandled) {
  auto out = DrainTree({{}, {"m"}, {}});
  EXPECT_EQ(out, (std::vector<std::string>{"m"}));
}

TEST(LoserTree, TiesGoToLowerSourceIndex) {
  std::vector<std::unique_ptr<VectorSource>> sources;
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<std::string>{"k"}));
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<std::string>{"k"}));
  std::vector<MergeSource*> raw{sources[0].get(), sources[1].get()};
  LoserTree tree(raw);
  NEX_ASSERT_OK(tree.Init());
  EXPECT_EQ(tree.Min(), sources[0].get());
  NEX_ASSERT_OK(tree.AdvanceMin());
  EXPECT_EQ(tree.Min(), sources[1].get());
}

TEST(LoserTree, RandomizedAgainstStdSort) {
  Random rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    int k = 1 + rng.Uniform(12);
    std::vector<std::vector<std::string>> runs(k);
    std::vector<std::string> all;
    for (auto& run : runs) {
      int n = rng.Uniform(30);
      for (int i = 0; i < n; ++i) run.push_back(rng.Identifier(3));
      std::sort(run.begin(), run.end());
      all.insert(all.end(), run.begin(), run.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(DrainTree(runs), all) << "trial " << trial;
  }
}

TEST(ExternalMergeSort, InMemoryPathWhenEverythingFits) {
  Env env(1024, 16);
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 8});
  NEX_ASSERT_OK(sorter.init_status());
  NEX_ASSERT_OK(sorter.Add("b", "2"));
  NEX_ASSERT_OK(sorter.Add("a", "1"));
  NEX_ASSERT_OK(sorter.Add("c", "3"));
  NEX_ASSERT_OK(sorter.Finish());
  EXPECT_TRUE(sorter.stats().in_memory);
  EXPECT_EQ(env.device()->stats().total(), 0u);

  std::string key, value;
  std::vector<std::string> keys;
  while (true) {
    auto more = sorter.Next(&key, &value);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    keys.push_back(key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ExternalMergeSort, SpillsAndMergesUnderTightBudget) {
  Env env(256, 8);
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 4});
  NEX_ASSERT_OK(sorter.init_status());
  Random rng(3);
  std::vector<std::pair<std::string, std::string>> reference;
  for (int i = 0; i < 2000; ++i) {
    std::string key = rng.Identifier(6) + std::to_string(i);
    std::string value = rng.Identifier(10);
    reference.emplace_back(key, value);
    NEX_ASSERT_OK(sorter.Add(key, value));
  }
  NEX_ASSERT_OK(sorter.Finish());
  EXPECT_FALSE(sorter.stats().in_memory);
  EXPECT_GT(sorter.stats().initial_runs, 1u);
  EXPECT_GE(sorter.stats().merge_passes, 1u);

  std::sort(reference.begin(), reference.end());
  std::string key, value;
  size_t index = 0;
  while (true) {
    auto more = sorter.Next(&key, &value);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_LT(index, reference.size());
    ASSERT_EQ(key, reference[index].first);
    ASSERT_EQ(value, reference[index].second);
    ++index;
  }
  EXPECT_EQ(index, reference.size());
  // Memory budget respected throughout.
  EXPECT_LE(env.budget()->peak_blocks(), env.budget()->total_blocks());
}

TEST(ExternalMergeSort, MultiPassWhenFanInIsTiny) {
  Env env(128, 8);
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 3});  // fan-in 2
  NEX_ASSERT_OK(sorter.init_status());
  Random rng(4);
  for (int i = 0; i < 3000; ++i) {
    NEX_ASSERT_OK(sorter.Add(rng.Identifier(8), "v"));
  }
  NEX_ASSERT_OK(sorter.Finish());
  // With fan-in 2 and many initial runs, several passes are needed.
  EXPECT_GE(sorter.stats().merge_passes, 3u);
  std::string key, value, previous;
  while (true) {
    auto more = sorter.Next(&key, &value);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_GE(key, previous);
    previous = key;
  }
}

TEST(ExternalMergeSort, StableForEqualKeys) {
  Env env(128, 8);
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 3});
  NEX_ASSERT_OK(sorter.init_status());
  for (int i = 0; i < 500; ++i) {
    NEX_ASSERT_OK(sorter.Add("same", std::to_string(i)));
  }
  NEX_ASSERT_OK(sorter.Finish());
  std::string key, value;
  int expected = 0;
  while (true) {
    auto more = sorter.Next(&key, &value);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ASSERT_EQ(value, std::to_string(expected++));
  }
  EXPECT_EQ(expected, 500);
}

TEST(ExternalMergeSort, EmptyInput) {
  Env env;
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 4});
  NEX_ASSERT_OK(sorter.init_status());
  NEX_ASSERT_OK(sorter.Finish());
  std::string key, value;
  auto more = sorter.Next(&key, &value);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ExternalMergeSort, RejectsTinyBudget) {
  Env env;
  RunStore store(env.device(), env.budget());
  ExternalMergeSorter sorter(&store, {.memory_blocks = 2});
  EXPECT_TRUE(sorter.init_status().IsInvalidArgument());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
