// Tests for the textual OrderSpec syntax and composite (then-by) keys.
#include <gtest/gtest.h>

#include "core/order_spec_parse.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

TEST(OrderSpecParse, SingleAttributeRule) {
  auto spec = ParseOrderSpec("*:attr(id)n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->rules().size(), 1u);
  const OrderRule& rule = spec->rules()[0];
  EXPECT_EQ(rule.element, "*");
  EXPECT_EQ(rule.source, KeySource::kAttribute);
  EXPECT_EQ(rule.argument, "id");
  EXPECT_TRUE(rule.numeric);
  EXPECT_FALSE(rule.descending);
}

TEST(OrderSpecParse, MultipleRulesAndFlags) {
  auto spec = ParseOrderSpec("employee:attr(ID)nd;*:attr(name);w:tag");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->rules().size(), 3u);
  EXPECT_TRUE(spec->rules()[0].numeric);
  EXPECT_TRUE(spec->rules()[0].descending);
  EXPECT_EQ(spec->rules()[1].element, "*");
  EXPECT_EQ(spec->rules()[2].source, KeySource::kTagName);
}

TEST(OrderSpecParse, ComplexSources) {
  auto spec = ParseOrderSpec("person:child(info/name);#text:text");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->rules()[0].source, KeySource::kChildText);
  EXPECT_EQ(spec->rules()[0].argument, "info/name");
  EXPECT_EQ(spec->rules()[1].element, "#text");
  EXPECT_EQ(spec->rules()[1].source, KeySource::kTextContent);
  EXPECT_TRUE(spec->HasComplexRules());
}

TEST(OrderSpecParse, CompositeKeys) {
  auto spec = ParseOrderSpec("employee:attr(dept),attr(ID)n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const OrderRule& rule = spec->rules()[0];
  EXPECT_EQ(rule.argument, "dept");
  ASSERT_EQ(rule.then_by.size(), 1u);
  EXPECT_EQ(rule.then_by[0].argument, "ID");
  EXPECT_TRUE(rule.then_by[0].numeric);
}

TEST(OrderSpecParse, Rejections) {
  for (const char* bad :
       {"", "noparts", ":attr(x)", "a:attr", "a:child", "a:attr(x", "a:bogus(y)",
        "a:attr(x)q", "a:child(p),attr(x)", "a:attr(x),child(p)", "a:"}) {
    auto spec = ParseOrderSpec(bad);
    EXPECT_FALSE(spec.ok()) << "accepted: " << bad;
  }
}

TEST(CompositeKeys, OrderByPrimaryThenSecondary) {
  const std::string xml =
      "<staff>"
      "<e dept=\"ops\" ID=\"30\"/>"
      "<e dept=\"dev\" ID=\"20\"/>"
      "<e dept=\"ops\" ID=\"4\"/>"
      "<e dept=\"dev\" ID=\"100\"/>"
      "</staff>";
  auto spec = ParseOrderSpec("e:attr(dept),attr(ID)n");
  ASSERT_TRUE(spec.ok());
  NexSortOptions options;
  options.order = *spec;
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted,
            "<staff>"
            "<e dept=\"dev\" ID=\"20\"></e>"
            "<e dept=\"dev\" ID=\"100\"></e>"
            "<e dept=\"ops\" ID=\"4\"></e>"
            "<e dept=\"ops\" ID=\"30\"></e>"
            "</staff>");
}

TEST(CompositeKeys, PrefixComponentsOrderCorrectly) {
  // Composite framing: ("a", "z") must sort before ("ab", "a") because the
  // first component decides — even though "ab" > "a" as a raw prefix blob.
  const std::string xml =
      "<r><x p=\"ab\" s=\"a\"/><x p=\"a\" s=\"z\"/></r>";
  auto spec = ParseOrderSpec("x:attr(p),attr(s)");
  ASSERT_TRUE(spec.ok());
  NexSortOptions options;
  options.order = *spec;
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted, "<r><x p=\"a\" s=\"z\"></x><x p=\"ab\" s=\"a\"></x></r>");
}

TEST(CompositeKeys, MatchesOracleOnRandomDocument) {
  nexsort::Random rng(321);
  std::string xml = "<r>";
  for (int i = 0; i < 200; ++i) {
    xml += "<x a=\"" + rng.Identifier(2) + "\" b=\"" +
           std::to_string(rng.Uniform(50)) + "\"/>";
  }
  xml += "</r>";
  auto spec = ParseOrderSpec("x:attr(a),attr(b)n");
  ASSERT_TRUE(spec.ok());
  NexSortOptions options;
  options.order = *spec;
  // Oracle equivalence holds because KeyForNode mirrors KeyForStartTag.
  EXPECT_EQ(NexSortString(xml, options, 512, 8), OracleSort(xml, *spec));
}

TEST(CompositeKeys, DescendingSecondary) {
  const std::string xml =
      "<r><x a=\"g\" b=\"1\"/><x a=\"g\" b=\"3\"/><x a=\"g\" b=\"2\"/></r>";
  auto spec = ParseOrderSpec("x:attr(a),attr(b)nd");
  ASSERT_TRUE(spec.ok());
  NexSortOptions options;
  options.order = *spec;
  EXPECT_EQ(NexSortString(xml, options),
            "<r><x a=\"g\" b=\"3\"></x><x a=\"g\" b=\"2\"></x>"
            "<x a=\"g\" b=\"1\"></x></r>");
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
