// Unit tests for the block-device substrate: allocation, read/write, I/O
// accounting (counts, sequentiality, categories, disk-time model), failure
// injection, and the file-backed implementation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "extmem/block_device.h"
#include "tests/test_util.h"

namespace nexsort {
namespace testing {
namespace {

std::string Block(size_t block_size, char fill) {
  return std::string(block_size, fill);
}

TEST(BlockDevice, AllocateAssignsDenseIds) {
  auto device = NewMemoryBlockDevice(256);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(3, &first));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(device->num_blocks(), 3u);
  NEX_ASSERT_OK(device->Allocate(2, &first));
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(device->num_blocks(), 5u);
}

TEST(BlockDevice, WriteReadRoundTrip) {
  auto device = NewMemoryBlockDevice(128);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(2, &id));
  std::string data = Block(128, 'x');
  NEX_ASSERT_OK(device->Write(0, data.data()));
  std::string back(128, '\0');
  NEX_ASSERT_OK(device->Read(0, back.data()));
  EXPECT_EQ(back, data);
}

TEST(BlockDevice, UnwrittenBlocksReadAsZeros) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(1, &id));
  std::string back(64, 'q');
  NEX_ASSERT_OK(device->Read(0, back.data()));
  EXPECT_EQ(back, std::string(64, '\0'));
}

TEST(BlockDevice, OutOfRangeAccessRejected) {
  auto device = NewMemoryBlockDevice(64);
  std::string buf(64, '\0');
  EXPECT_TRUE(device->Read(0, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(device->Write(5, buf.data()).IsInvalidArgument());
}

TEST(BlockDevice, CountsReadsAndWrites) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(4, &id));
  std::string buf = Block(64, 'a');
  for (int i = 0; i < 4; ++i) NEX_ASSERT_OK(device->Write(i, buf.data()));
  for (int i = 0; i < 3; ++i) NEX_ASSERT_OK(device->Read(i, buf.data()));
  EXPECT_EQ(device->stats().writes, 4u);
  EXPECT_EQ(device->stats().reads, 3u);
  EXPECT_EQ(device->stats().total(), 7u);
}

TEST(BlockDevice, DetectsSequentialAccess) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(10, &id));
  std::string buf = Block(64, 'a');
  // 0,1,2,3 written in order: 1,2,3 are sequential successors.
  for (int i = 0; i < 4; ++i) NEX_ASSERT_OK(device->Write(i, buf.data()));
  EXPECT_EQ(device->stats().sequential_writes, 3u);
  // A jump to 9 is random; 9 -> 0 is random too.
  NEX_ASSERT_OK(device->Read(9, buf.data()));
  NEX_ASSERT_OK(device->Read(0, buf.data()));
  EXPECT_EQ(device->stats().sequential_reads, 0u);
}

TEST(BlockDevice, DiskModelChargesSeeksForRandomAccess) {
  DiskModel model;
  model.seek_ms = 10.0;
  model.transfer_mb_per_s = 100.0;
  auto device = NewMemoryBlockDevice(1 << 20, model);  // 1 MiB blocks
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(3, &id));
  std::string buf = Block(1 << 20, 'a');
  NEX_ASSERT_OK(device->Write(0, buf.data()));  // random: seek + transfer
  NEX_ASSERT_OK(device->Write(1, buf.data()));  // sequential: transfer only
  // transfer = 1MiB / 100MB/s ~ 0.0105 s; seek = 0.010 s.
  double modeled = device->stats().modeled_seconds;
  EXPECT_NEAR(modeled, 0.010 + 2 * (1048576.0 / 100e6), 1e-4);
}

TEST(BlockDevice, AttributesIoToCategories) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(2, &id));
  std::string buf = Block(64, 'a');
  {
    IoCategoryScope scope(device.get(), IoCategory::kPathStack);
    NEX_ASSERT_OK(device->Write(0, buf.data()));
  }
  NEX_ASSERT_OK(device->Write(1, buf.data()));  // back to kOther
  const IoStats& stats = device->stats();
  EXPECT_EQ(stats.category_writes[static_cast<int>(IoCategory::kPathStack)],
            1u);
  EXPECT_EQ(stats.category_writes[static_cast<int>(IoCategory::kOther)], 1u);
}

TEST(BlockDevice, CategoryScopesNest) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(3, &id));
  std::string buf = Block(64, 'a');
  {
    IoCategoryScope outer(device.get(), IoCategory::kInput);
    {
      IoCategoryScope inner(device.get(), IoCategory::kRunWrite);
      NEX_ASSERT_OK(device->Write(0, buf.data()));
    }
    NEX_ASSERT_OK(device->Write(1, buf.data()));
  }
  const IoStats& stats = device->stats();
  EXPECT_EQ(stats.category_writes[static_cast<int>(IoCategory::kRunWrite)],
            1u);
  EXPECT_EQ(stats.category_writes[static_cast<int>(IoCategory::kInput)], 1u);
}

TEST(BlockDevice, FailureInjection) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(1, &id));
  std::string buf = Block(64, 'a');
  device->FailNextOps(2);
  EXPECT_TRUE(device->Write(0, buf.data()).IsIOError());
  EXPECT_TRUE(device->Read(0, buf.data()).IsIOError());
  NEX_EXPECT_OK(device->Write(0, buf.data()));
}

TEST(BlockDevice, StatsReportMentionsCategories) {
  auto device = NewMemoryBlockDevice(64);
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(1, &id));
  std::string buf = Block(64, 'a');
  {
    IoCategoryScope scope(device.get(), IoCategory::kDataStack);
    NEX_ASSERT_OK(device->Write(0, buf.data()));
  }
  std::string report = device->stats().ToString(64);
  EXPECT_NE(report.find("data-stack"), std::string::npos);
  EXPECT_NE(report.find("total I/Os: 1"), std::string::npos);
}

TEST(FileBlockDevice, RoundTripsThroughRealFile) {
  std::string path = ::testing::TempDir() + "/nexsort_device_test.bin";
  auto device_or = NewFileBlockDevice(path, 256);
  ASSERT_TRUE(device_or.ok()) << device_or.status().ToString();
  auto& device = *device_or;
  uint64_t id = 0;
  NEX_ASSERT_OK(device->Allocate(4, &id));
  std::string a = Block(256, 'a');
  std::string b = Block(256, 'b');
  NEX_ASSERT_OK(device->Write(0, a.data()));
  NEX_ASSERT_OK(device->Write(3, b.data()));
  std::string back(256, '\0');
  NEX_ASSERT_OK(device->Read(3, back.data()));
  EXPECT_EQ(back, b);
  NEX_ASSERT_OK(device->Read(0, back.data()));
  EXPECT_EQ(back, a);
  // Allocated but never written: zeros.
  NEX_ASSERT_OK(device->Read(2, back.data()));
  EXPECT_EQ(back, std::string(256, '\0'));
  std::remove(path.c_str());
}

TEST(FileBlockDevice, OpenFailsForBadPath) {
  auto device_or = NewFileBlockDevice("/nonexistent-dir/x/y.bin", 256);
  EXPECT_FALSE(device_or.ok());
  EXPECT_TRUE(device_or.status().IsIOError());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
