// ElementUnit serialization: round trips in both formats, size accounting,
// corruption detection, and the streaming run reader with resume offsets.
#include <gtest/gtest.h>

#include "core/element_unit.h"
#include "tests/test_util.h"

namespace nexsort {
namespace testing {
namespace {

ElementUnit MakeStart(uint32_t level, uint64_t seq) {
  ElementUnit unit;
  unit.type = UnitType::kStart;
  unit.level = level;
  unit.seq = seq;
  unit.name = "branch";
  unit.attributes = {{"name", "Durham"}, {"open", "1994"}};
  unit.key = "Durham";
  return unit;
}

void ExpectUnitsEqual(const ElementUnit& a, const ElementUnit& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.attributes, b.attributes);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.run.id, b.run.id);
  EXPECT_EQ(a.run.byte_size, b.run.byte_size);
}

class ElementUnitFormatTest : public ::testing::TestWithParam<bool> {
 protected:
  UnitFormat Format() const { return {.use_dictionary = GetParam()}; }
};

TEST_P(ElementUnitFormatTest, StartUnitRoundTrip) {
  NameDictionary dictionary;
  ElementUnit unit = MakeStart(3, 77);
  std::string buf;
  AppendUnit(&buf, unit, Format(), &dictionary);
  // EncodedSize is an estimate for threshold math: within a few bytes
  // (dictionary ids are guessed at 2 bytes each), never below the truth
  // by more than that slack.
  size_t estimate = unit.EncodedSize(Format());
  EXPECT_LE(buf.size(), estimate + 4);
  EXPECT_GE(buf.size() + 8, estimate);

  std::string_view view = buf;
  ElementUnit back;
  NEX_ASSERT_OK(ParseUnit(&view, &back, Format(), &dictionary));
  EXPECT_TRUE(view.empty());
  ExpectUnitsEqual(unit, back);
}

TEST_P(ElementUnitFormatTest, AllUnitTypesRoundTrip) {
  NameDictionary dictionary;
  std::vector<ElementUnit> units;
  units.push_back(MakeStart(1, 0));

  ElementUnit text;
  text.type = UnitType::kText;
  text.level = 2;
  text.seq = 1;
  text.text = "payload with <chars> & \0 bytes";
  units.push_back(text);

  ElementUnit end;
  end.type = UnitType::kEnd;
  end.level = 1;
  end.seq = 0;
  end.key = "resolved-key";
  units.push_back(end);

  ElementUnit pointer;
  pointer.type = UnitType::kPointer;
  pointer.level = 2;
  pointer.seq = 5;
  pointer.key = "ptr-key";
  pointer.run.id = 9;
  pointer.run.byte_size = 12345;
  units.push_back(pointer);

  ElementUnit fragment;
  fragment.type = UnitType::kFragment;
  fragment.level = 2;
  fragment.seq = 0;
  fragment.run.id = 4;
  fragment.run.byte_size = 512;
  units.push_back(fragment);

  std::string buf;
  for (const ElementUnit& unit : units) {
    AppendUnit(&buf, unit, Format(), &dictionary);
  }
  std::string_view view = buf;
  for (const ElementUnit& unit : units) {
    ElementUnit back;
    NEX_ASSERT_OK(ParseUnit(&view, &back, Format(), &dictionary));
    ExpectUnitsEqual(unit, back);
  }
  EXPECT_TRUE(view.empty());
}

INSTANTIATE_TEST_SUITE_P(Formats, ElementUnitFormatTest,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return info.param ? "Dictionary" : "Verbatim";
                         });

TEST(ElementUnit, DictionaryShrinksRepeatedNames) {
  NameDictionary dictionary;
  ElementUnit unit = MakeStart(2, 1);
  unit.name = "averyveryverylongelementname";
  UnitFormat with{.use_dictionary = true};
  UnitFormat without{.use_dictionary = false};
  std::string compact, verbose;
  AppendUnit(&compact, unit, with, &dictionary);
  AppendUnit(&verbose, unit, without, &dictionary);
  EXPECT_LT(compact.size(), verbose.size());
}

TEST(ElementUnit, ParseRejectsBadType) {
  NameDictionary dictionary;
  std::string buf = "\x09garbage";
  std::string_view view = buf;
  ElementUnit unit;
  EXPECT_TRUE(
      ParseUnit(&view, &unit, {.use_dictionary = true}, &dictionary)
          .IsCorruption());
}

TEST(ElementUnit, ParseRejectsUnknownDictionaryId) {
  NameDictionary dictionary;
  ElementUnit unit = MakeStart(1, 0);
  std::string buf;
  AppendUnit(&buf, unit, {.use_dictionary = true}, &dictionary);
  NameDictionary fresh;  // lacks the interned names
  std::string_view view = buf;
  ElementUnit back;
  EXPECT_TRUE(ParseUnit(&view, &back, {.use_dictionary = true}, &fresh)
                  .IsCorruption());
}

TEST(ElementUnit, ParseRejectsTruncation) {
  NameDictionary dictionary;
  ElementUnit unit = MakeStart(1, 0);
  std::string buf;
  AppendUnit(&buf, unit, {.use_dictionary = true}, &dictionary);
  for (size_t cut = 1; cut < buf.size(); cut += 3) {
    std::string truncated = buf.substr(0, cut);
    std::string_view view = truncated;
    ElementUnit back;
    EXPECT_FALSE(
        ParseUnit(&view, &back, {.use_dictionary = true}, &dictionary).ok())
        << "cut at " << cut;
  }
}

TEST(NameDictionary, InternIsIdempotent) {
  NameDictionary dictionary;
  uint32_t a = dictionary.Intern("region");
  uint32_t b = dictionary.Intern("branch");
  EXPECT_NE(a, b);
  EXPECT_EQ(dictionary.Intern("region"), a);
  EXPECT_EQ(dictionary.size(), 2u);
  auto name = dictionary.Lookup(a);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "region");
  EXPECT_TRUE(dictionary.Lookup(99).status().IsCorruption());
}

TEST(RunUnitReader, StreamsUnitsAndTracksOffsets) {
  Env env(128, 8);
  RunStore store(env.device(), env.budget());
  NameDictionary dictionary;
  UnitFormat format;

  std::string buf;
  std::vector<uint64_t> offsets;  // offset after each unit
  for (int i = 0; i < 100; ++i) {
    ElementUnit unit = MakeStart(1 + i % 5, i);
    unit.attributes[0].value = "val" + std::to_string(i);
    AppendUnit(&buf, unit, format, &dictionary);
    offsets.push_back(buf.size());
  }
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  NEX_ASSERT_OK(writer.Append(buf));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));

  RunUnitReader reader(&store, handle, 0, format, &dictionary);
  NEX_ASSERT_OK(reader.init_status());
  ElementUnit unit;
  for (int i = 0; i < 100; ++i) {
    auto more = reader.Next(&unit);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    ASSERT_TRUE(*more);
    EXPECT_EQ(unit.seq, static_cast<uint64_t>(i));
    EXPECT_EQ(reader.offset(), offsets[i]);
  }
  auto more = reader.Next(&unit);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(RunUnitReader, ResumesAtSavedOffset) {
  Env env(64, 8);
  RunStore store(env.device(), env.budget());
  NameDictionary dictionary;
  UnitFormat format;

  std::string buf;
  for (int i = 0; i < 20; ++i) {
    ElementUnit unit = MakeStart(1, i);
    AppendUnit(&buf, unit, format, &dictionary);
  }
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  NEX_ASSERT_OK(writer.Append(buf));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));

  // Read 7 units, remember the offset, reopen there.
  uint64_t resume = 0;
  {
    RunUnitReader reader(&store, handle, 0, format, &dictionary);
    NEX_ASSERT_OK(reader.init_status());
    ElementUnit unit;
    for (int i = 0; i < 7; ++i) {
      auto more = reader.Next(&unit);
      ASSERT_TRUE(more.ok() && *more);
    }
    resume = reader.offset();
  }
  RunUnitReader reader(&store, handle, resume, format, &dictionary);
  NEX_ASSERT_OK(reader.init_status());
  ElementUnit unit;
  auto more = reader.Next(&unit);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(unit.seq, 7u);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
