// Lint fixture: a (void)-discarded Status with no explanation.
// Rule `void-discard-comment` must fire: every intentional discard needs a
// comment on the same or preceding line saying why ignoring is safe.
#include "util/status.h"

namespace nexsort {

[[nodiscard]] Status FixtureCleanup();

void FixtureShutdown() {
  (void)FixtureCleanup();
}

}  // namespace nexsort
