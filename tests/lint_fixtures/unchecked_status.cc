// Lint fixture: a Status-returning call whose result is silently dropped.
// Rule `unchecked-status` must fire on the bare call below.
#include "util/status.h"

namespace nexsort {

[[nodiscard]] Status FixtureStep();

void FixtureDriver() {
  FixtureStep();
}

}  // namespace nexsort
