// Fixture: guarded-by must fire. A Mutex member with no
// NEXSORT_GUARDED_BY user in the file is either dead weight or — worse —
// its guarded data is unannotated and invisible to the capability
// analysis. A `// lint-ok: guarded-by` rationale is the escape hatch for
// the legitimate cases (e.g. a mutex serializing check-then-act over
// fields that stay lock-free atomics).
#include "util/thread_annotations.h"

namespace nexsort {

class Unannotated {
 public:
  void Bump() {
    MutexLock lock(&mutex_);
    ++value_;
  }

 private:
  Mutex mutex_{"Unannotated::mutex_", lock_rank::kLeaf};
  int value_ = 0;  // should be NEXSORT_GUARDED_BY(mutex_)
};

}  // namespace nexsort
