// Lint fixture: a well-formed file no rule may flag (false-positive guard).
#include "extmem/block_device.h"
#include "util/status.h"

namespace nexsort {

[[nodiscard]] Status FixtureCopy(BlockDevice* device, char* buf);

[[nodiscard]] Status FixtureCopy(BlockDevice* device, char* buf) {
  RETURN_IF_ERROR(device->Read(0, buf, IoCategory::kOther));
  return Status::OK();
}

}  // namespace nexsort
