// Lint fixture: raw randomness outside src/util/random. Rule
// `no-raw-random` must fire on the rand() below (unseeded randomness makes
// failures unreproducible; use the project RNG).
#include <cstdlib>

namespace nexsort {

int FixtureSeed() {
  return rand();
}

}  // namespace nexsort
