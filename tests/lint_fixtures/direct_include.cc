// Lint fixture: relies on a transitive include for a project type. Rule
// `direct-include` must fire: BlockDevice is used but its canonical header
// "extmem/block_device.h" is never included (util/status.h happens to
// reach it transitively in some include orders — never rely on that).
#include "util/status.h"

namespace nexsort {

uint64_t FixtureBlockCount(BlockDevice* device);

}  // namespace nexsort
