// Fixture: raw-mutex must fire. Locking with the standard-library
// primitives directly bypasses both the Clang capability analysis and the
// debug lock-order checker; everything in src/ goes through the wrappers
// in util/thread_annotations.h.
#include <condition_variable>
#include <mutex>

namespace nexsort {

class BadCounter {
 public:
  void Add(int delta) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ += delta;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int value_ = 0;
};

}  // namespace nexsort
