// Bad: constructs env-owned resource types directly instead of obtaining
// them from a SortEnv. Each of the three types, each construction form.
#include <memory>

#include "cache/buffer_pool.h"
#include "extmem/memory_budget.h"
#include "parallel/worker_pool.h"

namespace nexsort {

void StackConstruction() {
  MemoryBudget budget(32);
  WorkerPool pool{2};
  (void)budget;
  (void)pool;
}

void HeapConstruction() {
  auto budget = std::make_unique<MemoryBudget>(32);
  BufferPool* pool = new BufferPool(nullptr, budget.get(), {});
  delete pool;
}

}  // namespace nexsort
