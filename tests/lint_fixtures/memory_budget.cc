// Lint fixture: a .cc whose first include is not its paired header. Rule
// `include-first` must fire (linted as src/extmem/memory_budget.cc via
// --treat-as, so the paired header src/extmem/memory_budget.h exists).
#include "util/status.h"

#include "extmem/memory_budget.h"
