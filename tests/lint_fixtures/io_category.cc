// Lint fixture: a BlockDevice transfer without an explicit IoCategory.
// Rule `io-category` must fire on the Read below.
#include "extmem/block_device.h"
#include "util/status.h"

namespace nexsort {

[[nodiscard]] Status FixtureLoad(BlockDevice* device, char* buf) {
  return device->Read(0, buf);
}

}  // namespace nexsort
