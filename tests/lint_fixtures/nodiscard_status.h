// Lint fixture: a Status-returning header function missing [[nodiscard]].
// Rule `nodiscard-status` must fire on the declaration below.
#pragma once

#include "util/status.h"

namespace nexsort {

Status FixtureMissingNodiscard(int value);

}  // namespace nexsort
