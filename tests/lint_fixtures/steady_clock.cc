// Lint fixture: wall clock in a measurement path. Rule `steady-clock`
// must fire on the system_clock use below (wall time jumps under NTP/DST
// and corrupts span durations and sampler timelines; use
// std::chrono::steady_clock).
#include <chrono>

namespace nexsort {

double FixtureNow() {
  auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace nexsort
