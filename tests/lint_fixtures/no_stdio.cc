// Lint fixture: direct stdio in library code. Rule `no-stdio` must fire
// on the printf below (library code reports through Status / the tracer).
#include <cstdio>

namespace nexsort {

void FixtureLog(int value) {
  printf("value = %d\n", value);
}

}  // namespace nexsort
