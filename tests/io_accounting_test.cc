// I/O accounting tests validating the paper's Section 4.2 analysis with
// measured constants: stack paging is O(N/B), NEXSORT's total I/O respects
// the Theorem 4.5 bound, and the categorized breakdown matches the cost
// components the paper enumerates.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/tracer.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

struct RunResult {
  NexSortStats stats;
  IoStats io;
  uint64_t input_blocks;
};

RunResult RunNexSort(const std::string& xml, size_t block_size,
                     uint64_t memory_blocks, NexSortOptions options) {
  Env env(block_size, memory_blocks);
  NexSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status st = sorter.Sort(&source, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return {sorter.stats(), env.device()->stats(),
          (xml.size() + block_size - 1) / block_size};
}

NexSortOptions ByIdOptions() {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  return options;
}

TEST(IoAccounting, StackPagingIsLinearInInput) {
  // Lemmas 4.10 and 4.11: data-stack and path-stack paging are O(N/B).
  // Measure the constants on a tall document that actually pages.
  RandomTreeGenerator generator(7, 3, {.seed = 40, .element_bytes = 120});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  auto result = RunNexSort(*xml, 512, 8, ByIdOptions());

  auto category_total = [&](IoCategory category) {
    int c = static_cast<int>(category);
    return result.io.category_reads[c] + result.io.category_writes[c];
  };
  uint64_t n = result.input_blocks;
  EXPECT_LE(category_total(IoCategory::kDataStack), 4 * n + 4);
  EXPECT_LE(category_total(IoCategory::kPathStack), 2 * n + 4);
  EXPECT_LE(category_total(IoCategory::kOutputStack), 2 * n + 4);
}

TEST(IoAccounting, TotalIoWithinTheoremBound) {
  // Theorem 4.5: total I/O = O(N/B + (N/B) log_{M/B}(min{kt,N}/B)).
  // Check the measured total against the bound with a generous constant.
  for (uint64_t seed : {50u, 51u}) {
    RandomTreeGenerator generator(5, 6, {.seed = seed, .element_bytes = 100});
    auto xml = generator.GenerateString();
    ASSERT_TRUE(xml.ok());
    const size_t B = 512;
    const uint64_t M = 12;
    auto result = RunNexSort(*xml, B, M,
                             ByIdOptions());
    double n = static_cast<double>(result.input_blocks);
    double k = static_cast<double>(result.stats.scan.max_fanout);
    double t = 2.0 * B;
    double kt_blocks = std::min(k * t, static_cast<double>(xml->size())) / B;
    double log_term =
        std::max(1.0, std::log(std::max(2.0, kt_blocks)) /
                          std::log(static_cast<double>(M)));
    double bound = 16.0 * (n + n * log_term) + 64.0;
    EXPECT_LE(static_cast<double>(result.io.total()), bound)
        << "seed " << seed << ": total=" << result.io.total()
        << " n=" << n << " log_term=" << log_term;
  }
}

TEST(IoAccounting, InputReadExactlyOnce) {
  RandomTreeGenerator generator(4, 6, {.seed = 52, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  // Store the input on the device so the scan itself is counted.
  Env env(512, 16);
  auto range = StoreBytes(env.device(), env.budget(), *xml,
                          IoCategory::kOther);
  ASSERT_TRUE(range.ok());
  uint64_t input_blocks = (xml->size() + 511) / 512;

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  NexSorter sorter(env.get(), options);
  BlockStreamReader reader(env.device(), env.budget(), *range,
                           IoCategory::kInput);
  NEX_ASSERT_OK(reader.init_status());
  std::string out;
  StringByteSink sink(&out);
  NEX_ASSERT_OK(sorter.Sort(&reader, &sink));
  EXPECT_EQ(env.device()->stats()
                .category_reads[static_cast<int>(IoCategory::kInput)],
            input_blocks);
}

TEST(IoAccounting, OutputWrittenOnce) {
  RandomTreeGenerator generator(4, 6, {.seed = 53, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  Env env(512, 16);
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  NexSorter sorter(env.get(), options);
  StringByteSource source(*xml);
  BlockStreamWriter writer(env.device(), env.budget(),
                           IoCategory::kOutput);
  NEX_ASSERT_OK(writer.init_status());
  NEX_ASSERT_OK(sorter.Sort(&source, &writer));
  ByteRange range;
  NEX_ASSERT_OK(writer.Finish(&range));
  uint64_t output_blocks = (range.byte_size + 511) / 512;
  EXPECT_EQ(env.device()->stats()
                .category_writes[static_cast<int>(IoCategory::kOutput)],
            output_blocks);
}

TEST(IoAccounting, RunBlocksReadOncePlusPointerCount) {
  // Lemma 4.12: each sorted-run block is accessed 1 + p(b) times, so total
  // run reads <= run blocks + pointer units (+ reader refetch slack).
  RandomTreeGenerator generator(5, 5, {.seed = 54, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  auto result = RunNexSort(*xml, 512, 16,
                           ByIdOptions());
  uint64_t run_writes =
      result.io.category_writes[static_cast<int>(IoCategory::kRunWrite)];
  uint64_t run_reads =
      result.io.category_reads[static_cast<int>(IoCategory::kRunRead)];
  EXPECT_LE(run_reads, run_writes + 2 * result.stats.pointer_units + 2);
}

TEST(IoAccounting, NexSortBeatsKeyPathOnNestedInput) {
  // The headline claim, in miniature: on a hierarchical document with a
  // tight memory budget, NEXSORT does fewer I/Os than key-path external
  // merge sort.
  RandomTreeGenerator generator(6, 4, {.seed = 55, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  auto nex = RunNexSort(*xml, 512, 8,
                        ByIdOptions());

  Env env(512, 8);
  KeyPathSortOptions kp_options;
  kp_options.order = OrderSpec::ByAttribute("id", true);
  KeyPathXmlSorter baseline(env.get(), kp_options);
  StringByteSource source(*xml);
  std::string out;
  StringByteSink sink(&out);
  NEX_ASSERT_OK(baseline.Sort(&source, &sink));

  EXPECT_LT(nex.io.total(), env.device()->stats().total())
      << "NEXSORT " << nex.io.total() << " vs merge sort "
      << env.device()->stats().total();
}

TEST(IoAccounting, GracefulDegenerationCutsFlatDocumentIo) {
  // Section 3.2: on a flat document, without the optimization the whole
  // input sits on the data stack only to be popped into one giant external
  // subtree sort ("the initial pass is basically wasted"). With incomplete
  // sorted runs that external sort disappears, and total I/O drops
  // substantially (about 2x at this geometry).
  ShapeGenerator flat({3000}, {.seed = 56, .element_bytes = 100});
  auto xml = flat.GenerateString();
  ASSERT_TRUE(xml.ok());

  NexSortOptions plain;
  plain.order = OrderSpec::ByAttribute("id", true);
  auto without = RunNexSort(*xml, 512, 8, plain);

  NexSortOptions graceful = plain;
  graceful.order = OrderSpec::ByAttribute("id", true);
  graceful.graceful_degeneration = true;
  auto with = RunNexSort(*xml, 512, 8, graceful);

  EXPECT_GT(with.stats.fragment_runs, 0u);
  EXPECT_EQ(with.stats.sorts.external_sorts, 0u);
  EXPECT_GT(without.stats.sorts.external_sorts, 0u);
  EXPECT_LT(with.io.total() * 3, without.io.total() * 2)
      << "graceful " << with.io.total() << " vs plain "
      << without.io.total();
}

TEST(IoAccounting, TracerPhaseDeltasMatchDeviceCounters) {
  // The tracer's per-span I/O deltas come from snapshotting the device at
  // span boundaries, so the root span of a full sort must see exactly what
  // the device counted, per category, and the two phases must partition it.
  RandomTreeGenerator generator(5, 5, {.seed = 58, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  Tracer tracer;
  SortEnvOptions env_options;
  env_options.block_size = 512;
  env_options.memory_blocks = 12;
  env_options.tracer = &tracer;
  Env env(std::move(env_options));
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  NexSorter sorter(env.get(), options);
  StringByteSource source(*xml);
  std::string out;
  StringByteSink sink(&out);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));

  const IoStats& io = env.device()->stats();
  const SpanRecord* root = nullptr;
  const SpanRecord* sorting = nullptr;
  const SpanRecord* output = nullptr;
  for (const SpanRecord& span : tracer.spans()) {
    if (span.name == "nexsort") root = &span;
    if (span.name == "sorting_phase") sorting = &span;
    if (span.name == "output_phase") output = &span;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(sorting, nullptr);
  ASSERT_NE(output, nullptr);

  EXPECT_EQ(root->reads, io.reads);
  EXPECT_EQ(root->writes, io.writes);
  for (int c = 0; c < kNumIoCategories; ++c) {
    EXPECT_EQ(root->category_reads[c], io.category_reads[c])
        << "reads of " << IoCategoryName(static_cast<IoCategory>(c));
    EXPECT_EQ(root->category_writes[c], io.category_writes[c])
        << "writes of " << IoCategoryName(static_cast<IoCategory>(c));
    // The sort is exactly two top phases, so their deltas partition the
    // root's (spans are inclusive; sorting_phase contains the subtree
    // sorts, output_phase the run read-back).
    EXPECT_EQ(sorting->category_reads[c] + output->category_reads[c],
              root->category_reads[c])
        << IoCategoryName(static_cast<IoCategory>(c));
    EXPECT_EQ(sorting->category_writes[c] + output->category_writes[c],
              root->category_writes[c])
        << IoCategoryName(static_cast<IoCategory>(c));
  }

  // Run accounting flows into run events: every byte written as a run is
  // announced as created, and the output phase reads runs back.
  const uint64_t* events = tracer.run_event_counts();
  EXPECT_GT(events[static_cast<int>(RunEventKind::kCreated)], 0u);
  EXPECT_GT(events[static_cast<int>(RunEventKind::kReadBack)], 0u);
  // Every created run was recorded in the run-size histogram.
  EXPECT_EQ(tracer.metrics()->GetHistogram("run_size_bytes")->count(),
            events[static_cast<int>(RunEventKind::kCreated)]);
}

TEST(IoAccounting, ModeledSecondsMonotonicInIo) {
  RandomTreeGenerator generator(4, 8, {.seed = 57, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  auto small_memory = RunNexSort(*xml, 512, 8,
                                 ByIdOptions());
  auto large_memory = RunNexSort(*xml, 512, 64,
                                 ByIdOptions());
  EXPECT_GE(small_memory.io.total(), large_memory.io.total());
  EXPECT_GT(small_memory.io.modeled_seconds, 0.0);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
