// Pretty-printed output: indentation, inline text, and parse-equivalence
// with the compact form.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/dom.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

std::string PrettySort(std::string_view xml) {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.pretty_output = true;
  return NexSortString(xml, options);
}

TEST(PrettyOutput, IndentsByLevelAndKeepsTextInline) {
  EXPECT_EQ(PrettySort("<a id=\"1\"><b id=\"2\">hi</b><b id=\"1\"/></a>"),
            "<a id=\"1\">\n"
            "  <b id=\"1\"></b>\n"
            "  <b id=\"2\">hi</b>\n"
            "</a>");
}

TEST(PrettyOutput, LeafElementsCloseInline) {
  std::string out = PrettySort("<a><b><c/></b></a>");
  EXPECT_EQ(out, "<a>\n  <b>\n    <c></c>\n  </b>\n</a>");
}

TEST(PrettyOutput, ParsesBackToTheSameDocument) {
  RandomTreeGenerator generator(4, 6, {.seed = 55, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());

  NexSortOptions compact_options;
  compact_options.order = OrderSpec::ByAttribute("id", true);
  std::string compact = NexSortString(*xml, compact_options);
  std::string pretty = PrettySort(*xml);
  EXPECT_NE(compact, pretty);

  // Same logical document: whitespace-only text is formatting.
  auto compact_dom = ParseDom(compact);
  auto pretty_dom = ParseDom(pretty);
  ASSERT_TRUE(compact_dom.ok() && pretty_dom.ok());
  EXPECT_TRUE((*compact_dom)->Equals(**pretty_dom));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
