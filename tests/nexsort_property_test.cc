// Parameterized property sweeps: across document shapes, memory budgets,
// block sizes, thresholds, and option combinations, NEXSORT and the
// key-path baseline must (a) equal the in-memory recursive-sort oracle,
// (b) be a structure-preserving permutation of the input, and (c) stay
// inside the memory budget.
#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "xml/dom.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

struct SweepParam {
  int height;
  uint64_t max_fanout;
  size_t block_size;
  uint64_t memory_blocks;
  uint64_t threshold;  // 0 = default 2B
  bool graceful;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  return "h" + std::to_string(p.height) + "f" + std::to_string(p.max_fanout) +
         "B" + std::to_string(p.block_size) + "M" +
         std::to_string(p.memory_blocks) + "t" + std::to_string(p.threshold) +
         (p.graceful ? "g1" : "g0") + "s" + std::to_string(p.seed);
}

class NexSortSweep : public ::testing::TestWithParam<SweepParam> {};

// Multiset of (element name, attrs, text) signatures plus every
// parent->child edge signature: a sorted document must preserve both.
void CollectSignatures(const XmlNode& node, const std::string& parent_sig,
                       std::map<std::string, int>* counts) {
  std::string sig = node.is_text ? "T:" + node.text : "E:" + node.name;
  for (const auto& attr : node.attributes) {
    sig += ";" + attr.name + "=" + attr.value;
  }
  ++(*counts)["node|" + sig];
  ++(*counts)["edge|" + parent_sig + ">" + sig];
  for (const auto& child : node.children) {
    CollectSignatures(*child, sig, counts);
  }
}

TEST_P(NexSortSweep, MatchesOracleAndPreservesStructure) {
  const SweepParam& p = GetParam();
  RandomTreeGenerator generator(
      p.height, p.max_fanout,
      {.seed = p.seed, .element_bytes = 60, .key_space = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.sort_threshold = p.threshold;
  options.graceful_degeneration = p.graceful;

  Env env(p.block_size, p.memory_blocks);
  NexSorter sorter(env.get(), options);
  StringByteSource source(*xml);
  std::string sorted;
  StringByteSink sink(&sorted);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));

  // (a) Oracle equivalence.
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));

  // (b) Permutation + edge preservation.
  auto input_dom = ParseDom(*xml);
  auto output_dom = ParseDom(sorted);
  ASSERT_TRUE(input_dom.ok() && output_dom.ok());
  std::map<std::string, int> input_sigs, output_sigs;
  CollectSignatures(**input_dom, "", &input_sigs);
  CollectSignatures(**output_dom, "", &output_sigs);
  EXPECT_EQ(input_sigs, output_sigs);

  // (c) Budget respected.
  EXPECT_LE(env.budget()->peak_blocks(), env.budget()->total_blocks());

  // Sanity on the stats the benchmarks rely on.
  const NexSortStats& stats = sorter.stats();
  EXPECT_EQ(stats.scan.max_depth, static_cast<uint64_t>(p.height));
  EXPECT_GE(stats.subtree_sorts, 1u);
  EXPECT_EQ(stats.input_bytes, xml->size());
  EXPECT_EQ(stats.output_bytes, sorted.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NexSortSweep,
    ::testing::Values(
        // Shallow and wide through tall and narrow.
        SweepParam{2, 40, 512, 16, 0, false, 1},
        SweepParam{3, 10, 512, 16, 0, false, 2},
        SweepParam{4, 6, 512, 16, 0, false, 3},
        SweepParam{5, 4, 512, 16, 0, false, 4},
        SweepParam{7, 2, 512, 16, 0, false, 5},
        SweepParam{10, 1, 512, 16, 0, false, 6}),  // a pure chain
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Memory, NexSortSweep,
    ::testing::Values(
        // Same document, shrinking memory: exercises the internal/external
        // subtree sort crossover.
        SweepParam{5, 5, 256, 64, 0, false, 7},
        SweepParam{5, 5, 256, 16, 0, false, 7},
        SweepParam{5, 5, 256, 10, 0, false, 7},
        SweepParam{5, 5, 256, 8, 0, false, 7}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Threshold, NexSortSweep,
    ::testing::Values(
        // Sort-threshold ablation: t from half a block to far above memory.
        SweepParam{4, 8, 256, 16, 128, false, 8},
        SweepParam{4, 8, 256, 16, 512, false, 8},
        SweepParam{4, 8, 256, 16, 2048, false, 8},
        SweepParam{4, 8, 256, 16, 16384, false, 8}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Graceful, NexSortSweep,
    ::testing::Values(
        SweepParam{2, 60, 256, 8, 0, true, 9},
        SweepParam{3, 12, 256, 8, 0, true, 10},
        SweepParam{5, 5, 256, 8, 0, true, 11},
        SweepParam{6, 3, 512, 10, 0, true, 12}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Seeds, NexSortSweep,
    ::testing::Values(
        SweepParam{4, 7, 512, 12, 0, false, 100},
        SweepParam{4, 7, 512, 12, 0, false, 101},
        SweepParam{4, 7, 512, 12, 0, true, 102},
        SweepParam{4, 7, 512, 12, 0, true, 103},
        SweepParam{4, 7, 512, 12, 0, false, 104}),
    ParamName);

// The baseline must agree with the oracle under the same sweep axes.
class KeyPathSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KeyPathSweep, MatchesOracle) {
  const SweepParam& p = GetParam();
  RandomTreeGenerator generator(
      p.height, p.max_fanout,
      {.seed = p.seed, .element_bytes = 60, .key_space = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  Env env(p.block_size, p.memory_blocks);
  KeyPathXmlSorter sorter(env.get(), options);
  StringByteSource source(*xml);
  std::string sorted;
  StringByteSink sink(&sorted);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
  EXPECT_LE(env.budget()->peak_blocks(), env.budget()->total_blocks());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KeyPathSweep,
    ::testing::Values(
        SweepParam{2, 40, 512, 8, 0, false, 1},
        SweepParam{4, 6, 512, 8, 0, false, 3},
        SweepParam{5, 4, 256, 4, 0, false, 4},
        SweepParam{7, 2, 256, 4, 0, false, 5},
        SweepParam{5, 5, 256, 16, 0, false, 7}),
    ParamName);

// NEXSORT and the baseline must agree with each other bit-for-bit too.
TEST(CrossAlgorithm, NexSortEqualsKeyPathBaseline) {
  for (uint64_t seed : {200u, 201u, 202u}) {
    RandomTreeGenerator generator(5, 5, {.seed = seed, .element_bytes = 60});
    auto xml = generator.GenerateString();
    ASSERT_TRUE(xml.ok());
    NexSortOptions nex_options;
    nex_options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    KeyPathSortOptions kp_options;
    kp_options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    EXPECT_EQ(NexSortString(*xml, nex_options, 512, 10),
              KeyPathSortString(*xml, kp_options, 512, 10))
        << "seed " << seed;
  }
}

// Already-sorted input: output identical, and every sibling list ordered.
TEST(CrossAlgorithm, SortedInputIsFixedPoint) {
  RandomTreeGenerator generator(4, 8, {.seed = 300, .element_bytes = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted = OracleSort(*xml, spec);
  NexSortOptions options;
  options.order = spec;
  EXPECT_EQ(NexSortString(sorted, options), sorted);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
