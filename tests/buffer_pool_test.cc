// Buffer-pool subsystem tests: pin/unpin reference counting, CLOCK
// eviction, dirty write-back (category-preserving, deferred-failure
// surfacing), read-ahead, budget accounting, and a randomized property
// test that a CachedBlockDevice leaves the backing device byte-identical
// to an uncached run under interleaved readers and writers.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cache/buffer_pool.h"
#include "core/nexsort.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/stream.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

constexpr size_t kBlock = 256;

std::string Fill(char c) { return std::string(kBlock, c); }

TEST(BufferPool, BudgetChargedForFramesAndReleased) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(16);
  {
    BufferPool pool(device.get(), &budget, {.frames = 6});
    NEX_ASSERT_OK(pool.init_status());
    EXPECT_EQ(budget.used_blocks(), 6u);
    EXPECT_EQ(budget.peak_blocks(), 6u);
  }
  EXPECT_EQ(budget.used_blocks(), 0u);
  EXPECT_EQ(budget.release_underflows(), 0u);
}

TEST(BufferPool, OutOfMemoryReportsRequestedUsedTotal) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  NEX_ASSERT_OK(budget.Acquire(3));
  BufferPool pool(device.get(), &budget, {.frames = 7});
  ASSERT_TRUE(pool.init_status().IsOutOfMemory());
  const std::string& msg = pool.init_status().message();
  EXPECT_NE(msg.find("requested 7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("3 of 8 in use"), std::string::npos) << msg;
  budget.Release(3);
}

TEST(BufferPool, ZeroFramesRejected) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  BufferPool pool(device.get(), &budget, {.frames = 0});
  EXPECT_TRUE(pool.init_status().IsInvalidArgument());
}

TEST(BufferPool, PinnedFramesAreNeverEvicted) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(4, &first));
  BufferPool pool(device.get(), &budget, {.frames = 2});
  NEX_ASSERT_OK(pool.init_status());

  auto a = pool.Pin(0, IoCategory::kOther, /*load=*/true);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = pool.Pin(1, IoCategory::kOther, /*load=*/true);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(pool.pinned_frames(), 2u);

  // Both frames pinned: a third block has nowhere to go.
  auto c = pool.Pin(2, IoCategory::kOther, /*load=*/true);
  EXPECT_TRUE(c.status().IsOutOfMemory());

  // Re-pinning a resident block is fine (refcount, not a new frame).
  auto a2 = pool.Pin(0, IoCategory::kOther, /*load=*/true);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a2, *a);
  pool.Unpin(*a2, /*mark_dirty=*/false);
  EXPECT_EQ(pool.pinned_frames(), 2u);  // block 0 still pinned once

  pool.Unpin(*b, /*mark_dirty=*/false);
  auto c2 = pool.Pin(2, IoCategory::kOther, /*load=*/true);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  pool.Unpin(*c2, /*mark_dirty=*/false);
  pool.Unpin(*a, /*mark_dirty=*/false);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST(BufferPool, ClockGivesRecentlyUsedFramesASecondChance) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(6, &first));
  BufferPool pool(device.get(), &budget, {.frames = 3});
  NEX_ASSERT_OK(pool.init_status());

  std::string buf(kBlock, '\0');
  // Fill the pool; every frame is referenced.
  NEX_ASSERT_OK(pool.ReadBlock(0, buf.data(), IoCategory::kOther));
  NEX_ASSERT_OK(pool.ReadBlock(1, buf.data(), IoCategory::kOther));
  NEX_ASSERT_OK(pool.ReadBlock(2, buf.data(), IoCategory::kOther));
  // All referenced: the sweep clears every bit and evicts at the hand
  // (block 0). Blocks 1 and 2 are now resident but unreferenced.
  NEX_ASSERT_OK(pool.ReadBlock(3, buf.data(), IoCategory::kOther));
  EXPECT_EQ(pool.stats().evictions, 1u);

  // Touch block 2: its referenced bit is its second chance.
  NEX_ASSERT_OK(pool.ReadBlock(2, buf.data(), IoCategory::kOther));
  EXPECT_EQ(pool.stats().hits, 1u);

  // Next eviction must pick the not-recently-used block 1, sparing 2.
  NEX_ASSERT_OK(pool.ReadBlock(4, buf.data(), IoCategory::kOther));
  EXPECT_EQ(pool.stats().evictions, 2u);
  uint64_t reads_before = device->stats().reads;
  NEX_ASSERT_OK(pool.ReadBlock(2, buf.data(), IoCategory::kOther));
  NEX_ASSERT_OK(pool.ReadBlock(3, buf.data(), IoCategory::kOther));
  EXPECT_EQ(device->stats().reads, reads_before);  // both still resident
  EXPECT_EQ(pool.stats().hits, 3u);
}

TEST(BufferPool, EvictionWritesBackUnderWritersCategory) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(4, &first));
  BufferPool pool(device.get(), &budget, {.frames = 1});
  NEX_ASSERT_OK(pool.init_status());

  std::string data = Fill('d');
  NEX_ASSERT_OK(pool.WriteBlock(0, data.data(), IoCategory::kDataStack));
  EXPECT_EQ(device->stats().writes, 0u);  // deferred

  // Reading block 1 evicts the dirty frame: one physical write, attributed
  // to the data stack even though the read runs under run-read.
  std::string buf(kBlock, '\0');
  NEX_ASSERT_OK(pool.ReadBlock(1, buf.data(), IoCategory::kRunRead));
  EXPECT_EQ(device->stats().writes, 1u);
  EXPECT_EQ(
      device->stats().category_writes[static_cast<int>(IoCategory::kDataStack)],
      1u);
  EXPECT_EQ(pool.stats().writebacks, 1u);
  EXPECT_EQ(pool.stats().evictions, 1u);

  std::string back(kBlock, '\0');
  NEX_ASSERT_OK(device->Read(0, back.data()));
  EXPECT_EQ(back, data);
}

TEST(BufferPool, FlushWritesAllDirtyFramesOnce) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(4, &first));
  BufferPool pool(device.get(), &budget, {.frames = 4});
  NEX_ASSERT_OK(pool.init_status());

  for (uint64_t id = 0; id < 3; ++id) {
    std::string data = Fill(static_cast<char>('a' + id));
    NEX_ASSERT_OK(pool.WriteBlock(id, data.data(), IoCategory::kOther));
  }
  EXPECT_EQ(device->stats().writes, 0u);
  NEX_ASSERT_OK(pool.Flush());
  EXPECT_EQ(device->stats().writes, 3u);
  NEX_ASSERT_OK(pool.Flush());  // everything clean: no more I/O
  EXPECT_EQ(device->stats().writes, 3u);
  for (uint64_t id = 0; id < 3; ++id) {
    std::string back(kBlock, '\0');
    NEX_ASSERT_OK(device->Read(id, back.data()));
    EXPECT_EQ(back, Fill(static_cast<char>('a' + id)));
  }
}

TEST(BufferPool, ReadAheadPrefetchesDetectedSequentialScan) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(16);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(32, &first));
  for (uint64_t id = 0; id < 32; ++id) {
    std::string data = Fill(static_cast<char>('A' + (id % 26)));
    NEX_ASSERT_OK(device->Write(id, data.data()));
  }
  device->mutable_stats()->Clear();

  BufferPool pool(device.get(), &budget, {.frames = 8, .readahead = 4});
  NEX_ASSERT_OK(pool.init_status());
  std::string buf(kBlock, '\0');
  for (uint64_t id = 0; id < 32; ++id) {
    NEX_ASSERT_OK(pool.ReadBlock(id, buf.data(), IoCategory::kInput));
    EXPECT_EQ(buf, Fill(static_cast<char>('A' + (id % 26))));
  }
  // The scan is detected at the second read; from there prefetched blocks
  // serve later reads as hits.
  EXPECT_GT(pool.stats().prefetches, 0u);
  EXPECT_GT(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, 32u);
  // Every physical read happened exactly once: 32 logical reads cost 32
  // physical reads total (prefetch shifts them earlier, never duplicates).
  EXPECT_EQ(device->stats().reads, 32u);
  EXPECT_GE(device->stats().sequential_reads, 28u);
}

TEST(BufferPool, RandomAccessDoesNotPrefetch) {
  auto device = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(16);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(16, &first));
  BufferPool pool(device.get(), &budget, {.frames = 4, .readahead = 4});
  NEX_ASSERT_OK(pool.init_status());
  std::string buf(kBlock, '\0');
  for (uint64_t id : {0, 7, 2, 11, 5, 13, 1, 9}) {
    NEX_ASSERT_OK(pool.ReadBlock(id, buf.data(), IoCategory::kOther));
  }
  EXPECT_EQ(pool.stats().prefetches, 0u);
}

TEST(CachedBlockDevice, LogicalStatsOnWrapperPhysicalOnBase) {
  auto base = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  CachedBlockDevice cached(base.get(), &budget, {.frames = 4});
  NEX_ASSERT_OK(cached.init_status());

  uint64_t first = 0;
  NEX_ASSERT_OK(cached.Allocate(2, &first));
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(base->num_blocks(), 2u);

  std::string data = Fill('x');
  NEX_ASSERT_OK(cached.Write(0, data.data()));
  std::string back(kBlock, '\0');
  for (int i = 0; i < 5; ++i) {
    NEX_ASSERT_OK(cached.Read(0, back.data()));
    EXPECT_EQ(back, data);
  }
  // 1 logical write + 5 logical reads; physically nothing yet (the write
  // is deferred and every read hit the dirty frame).
  EXPECT_EQ(cached.stats().writes, 1u);
  EXPECT_EQ(cached.stats().reads, 5u);
  EXPECT_EQ(base->stats().total(), 0u);
  EXPECT_EQ(cached.pool()->stats().hits, 5u);

  NEX_ASSERT_OK(cached.Flush());
  EXPECT_EQ(base->stats().writes, 1u);
}

TEST(CachedBlockDevice, CategoryScopesReachTheBaseDevice) {
  auto base = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  CachedBlockDevice cached(base.get(), &budget, {.frames = 2});
  NEX_ASSERT_OK(cached.init_status());
  uint64_t first = 0;
  NEX_ASSERT_OK(cached.Allocate(2, &first));
  std::string buf(kBlock, '\0');
  {
    IoCategoryScope scope(&cached, IoCategory::kPathStack);
    NEX_ASSERT_OK(cached.Read(1, buf.data()));  // miss: physical load
  }
  EXPECT_EQ(
      base->stats().category_reads[static_cast<int>(IoCategory::kPathStack)],
      1u);
}

TEST(CachedBlockDevice, AdoptsBlocksAllocatedBeforeWrapping) {
  auto base = NewMemoryBlockDevice(kBlock);
  uint64_t first = 0;
  NEX_ASSERT_OK(base->Allocate(3, &first));
  std::string data = Fill('p');
  NEX_ASSERT_OK(base->Write(2, data.data()));

  MemoryBudget budget(8);
  CachedBlockDevice cached(base.get(), &budget, {.frames = 2});
  NEX_ASSERT_OK(cached.init_status());
  EXPECT_EQ(cached.num_blocks(), 3u);
  std::string back(kBlock, '\0');
  NEX_ASSERT_OK(cached.Read(2, back.data()));
  EXPECT_EQ(back, data);
  NEX_ASSERT_OK(cached.Allocate(1, &first));
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(base->num_blocks(), 4u);
}

TEST(BlockDevice, FailureInjectionFiltersByOpType) {
  auto device = NewMemoryBlockDevice(kBlock);
  uint64_t first = 0;
  NEX_ASSERT_OK(device->Allocate(1, &first));
  std::string buf = Fill('z');

  device->FailNextOps(1, BlockDevice::FailOps::kReads);
  NEX_EXPECT_OK(device->Write(0, buf.data()));  // writes unaffected
  EXPECT_TRUE(device->Read(0, buf.data()).IsIOError());
  NEX_EXPECT_OK(device->Read(0, buf.data()));  // injection consumed

  device->FailNextOps(1, BlockDevice::FailOps::kWrites);
  NEX_EXPECT_OK(device->Read(0, buf.data()));  // reads unaffected
  EXPECT_TRUE(device->Write(0, buf.data()).IsIOError());
  NEX_EXPECT_OK(device->Write(0, buf.data()));

  // FailAfterOps counts only matching operations.
  device->FailAfterOps(1, 1, BlockDevice::FailOps::kWrites);
  NEX_EXPECT_OK(device->Read(0, buf.data()));
  NEX_EXPECT_OK(device->Write(0, buf.data()));  // skipped one write
  EXPECT_TRUE(device->Write(0, buf.data()).IsIOError());
}

TEST(CachedBlockDevice, DeferredWritebackFailureSurfacesFromFlush) {
  auto base = NewMemoryBlockDevice(kBlock);
  MemoryBudget budget(8);
  CachedBlockDevice cached(base.get(), &budget, {.frames = 2});
  NEX_ASSERT_OK(cached.init_status());
  uint64_t first = 0;
  NEX_ASSERT_OK(cached.Allocate(4, &first));

  std::string data = Fill('w');
  NEX_ASSERT_OK(cached.Write(0, data.data()));  // dirty frame, no I/O yet

  // From here every physical *write* fails; reads keep working.
  base->FailNextOps(100, BlockDevice::FailOps::kWrites);

  // These reads force evictions. The dirty frame's write-back fails, but
  // the reads themselves succeed (a clean victim is found) — the failure
  // is deferred, not swallowed.
  std::string buf(kBlock, '\0');
  NEX_ASSERT_OK(cached.Read(1, buf.data()));
  NEX_ASSERT_OK(cached.Read(2, buf.data()));
  NEX_ASSERT_OK(cached.Read(3, buf.data()));
  EXPECT_GT(cached.pool()->stats().writeback_failures, 0u);

  // Flush surfaces the deferred failure (and its own retry also fails).
  EXPECT_TRUE(cached.Flush().IsIOError());

  // Once writes work again, Flush lands the data: nothing was lost.
  base->FailNextOps(0);
  NEX_ASSERT_OK(cached.Flush());
  std::string back(kBlock, '\0');
  NEX_ASSERT_OK(base->Read(0, back.data()));
  EXPECT_EQ(back, data);
}

// Randomized property test: a CachedBlockDevice under interleaved readers
// and writers — varied frame counts, with and without read-ahead — returns
// the same bytes as an uncached device and, after Flush, leaves the
// backing device byte-identical.
TEST(CachedBlockDeviceProperty, MatchesUncachedDeviceByteForByte) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Random rng(seed * 7919);
    uint64_t frames = rng.UniformRange(1, 6);
    uint64_t readahead = rng.OneIn(2) ? rng.UniformRange(1, 4) : 0;

    auto plain = NewMemoryBlockDevice(kBlock);
    auto backing = NewMemoryBlockDevice(kBlock);
    MemoryBudget budget(frames + 2);
    CachedBlockDevice cached(backing.get(), &budget,
                             {.frames = frames, .readahead = readahead});
    NEX_ASSERT_OK(cached.init_status());

    uint64_t blocks = rng.UniformRange(8, 24);
    uint64_t first = 0;
    NEX_ASSERT_OK(plain->Allocate(blocks, &first));
    NEX_ASSERT_OK(cached.Allocate(blocks, &first));

    // Interleaved readers and writers: two cursors scan sequentially
    // (exercising read-ahead) while random reads/writes interleave.
    uint64_t scan_a = 0;
    uint64_t scan_b = blocks / 2;
    uint64_t ops = rng.UniformRange(100, 300);
    for (uint64_t op = 0; op < ops; ++op) {
      uint64_t id;
      switch (rng.Uniform(4)) {
        case 0:
          id = scan_a;
          scan_a = (scan_a + 1) % blocks;
          break;
        case 1:
          id = scan_b;
          scan_b = (scan_b + 1) % blocks;
          break;
        default:
          id = rng.Uniform(blocks);
      }
      IoCategory category = static_cast<IoCategory>(rng.Uniform(
          static_cast<uint64_t>(kNumIoCategories)));
      IoCategoryScope plain_scope(plain.get(), category);
      IoCategoryScope cached_scope(&cached, category);
      if (rng.OneIn(3)) {
        std::string data(kBlock, '\0');
        for (char& c : data) c = static_cast<char>(rng.Uniform(256));
        NEX_ASSERT_OK(plain->Write(id, data.data()));
        NEX_ASSERT_OK(cached.Write(id, data.data()));
      } else {
        std::string expected(kBlock, '\0');
        std::string actual(kBlock, '\0');
        NEX_ASSERT_OK(plain->Read(id, expected.data()));
        NEX_ASSERT_OK(cached.Read(id, actual.data()));
        ASSERT_EQ(actual, expected)
            << "seed " << seed << " op " << op << " block " << id;
      }
    }

    NEX_ASSERT_OK(cached.Flush());
    // Caching must save physical I/O, never add it.
    EXPECT_LE(backing->stats().total(), cached.stats().total() +
                                            cached.pool()->stats().prefetches);
    for (uint64_t id = 0; id < blocks; ++id) {
      std::string expected(kBlock, '\0');
      std::string actual(kBlock, '\0');
      NEX_ASSERT_OK(plain->Read(id, expected.data()));
      NEX_ASSERT_OK(backing->Read(id, actual.data()));
      ASSERT_EQ(actual, expected) << "seed " << seed << " block " << id;
    }
    EXPECT_EQ(budget.used_blocks(), frames);
    EXPECT_EQ(budget.release_underflows(), 0u);
  }
}

// End-to-end: NEXSORT with a cache produces identical output, saves
// physical I/O, and stays inside the memory budget (cache frames
// included).
TEST(CachedBlockDeviceProperty, NexSortWithCacheMatchesUncachedAndSavesIo) {
  RandomTreeGenerator generator(/*height=*/5, /*max_fanout=*/6,
                                {.seed = 11, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  constexpr uint64_t kMemoryBlocks = 48;
  auto run = [&](uint64_t cache_frames, uint64_t readahead, IoStats* io,
                 uint64_t* peak) {
    SortEnvOptions env_options;
    env_options.block_size = 512;
    env_options.memory_blocks = kMemoryBlocks;
    env_options.cache = {.frames = cache_frames, .readahead = readahead};
    Env env(std::move(env_options));
    NexSortOptions options;
    options.order = spec;
    NexSorter sorter(env.get(), options);
    StringByteSource source(*xml);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
    *io = env.env->physical_device()->stats();
    *peak = env.budget()->peak_blocks();
    return out;
  };

  IoStats uncached_io, cached_io;
  uint64_t uncached_peak = 0, cached_peak = 0;
  std::string uncached = run(0, 0, &uncached_io, &uncached_peak);
  std::string cached = run(16, 4, &cached_io, &cached_peak);
  EXPECT_EQ(cached, uncached);
  EXPECT_LT(cached_io.total(), uncached_io.total());
  EXPECT_LE(cached_peak, kMemoryBlocks);
  EXPECT_LE(uncached_peak, kMemoryBlocks);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
