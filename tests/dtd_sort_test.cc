// Interactions between DTD seeding, composite keys, and the checker.
#include <gtest/gtest.h>

#include "core/sorted_check.h"
#include "tests/test_util.h"
#include "xml/dtd.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(DtdSort, SeededDictionaryDoesNotChangeOutput) {
  auto dtd = Dtd::Parse(
      "<!ELEMENT root (n1*)><!ELEMENT n1 (n2*)><!ELEMENT n2 (n3*)>"
      "<!ELEMENT n3 (#PCDATA)>"
      "<!ATTLIST n1 id CDATA #REQUIRED>"
      "<!ATTLIST n2 id CDATA #REQUIRED>"
      "<!ATTLIST n3 id CDATA #REQUIRED>");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();

  RandomTreeGenerator generator(4, 5, {.seed = 808, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  // The generator uses tags n1..n4; close enough — seeding adds extra ids
  // that simply go unused, which must be harmless.
  NexSortOptions plain;
  plain.order = OrderSpec::ByAttribute("id", true);
  std::string without = NexSortString(*xml, plain);

  NexSortOptions seeded;
  seeded.order = OrderSpec::ByAttribute("id", true);
  seeded.dtd = &*dtd;
  std::string with = NexSortString(*xml, seeded);
  EXPECT_EQ(without, with);
}

TEST(DtdSort, CheckerUnderstandsCompositeKeys) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "x";
  rule.source = KeySource::kAttribute;
  rule.argument = "a";
  OrderRule secondary;
  secondary.source = KeySource::kAttribute;
  secondary.argument = "b";
  secondary.numeric = true;
  rule.then_by.push_back(secondary);
  spec.AddRule(rule);

  // Sorted under (a, b-numeric): equal a, ascending b.
  auto good = CheckSorted(
      "<r><x a=\"k\" b=\"2\"/><x a=\"k\" b=\"10\"/><x a=\"m\" b=\"1\"/></r>",
      spec);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->sorted) << good->violation;

  auto bad = CheckSorted(
      "<r><x a=\"k\" b=\"10\"/><x a=\"k\" b=\"2\"/></r>", spec);
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->sorted);
}

TEST(DtdSort, ValidationComposesWithSortPipeline) {
  // Validate -> sort -> validate again: a conforming document stays
  // conforming, and the sorted output passes the sortedness check.
  auto dtd = Dtd::Parse(
      "<!ELEMENT library (book*)><!ELEMENT book (title)>"
      "<!ELEMENT title (#PCDATA)>"
      "<!ATTLIST book isbn CDATA #REQUIRED>");
  ASSERT_TRUE(dtd.ok());
  const std::string xml =
      "<library>"
      "<book isbn=\"9\"><title>Z</title></book>"
      "<book isbn=\"3\"><title>A</title></book>"
      "</library>";
  ASSERT_TRUE((*dtd->Validate(xml)).valid);

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("isbn", true);
  options.dtd = &*dtd;
  std::string sorted = NexSortString(xml, options);
  EXPECT_TRUE((*dtd->Validate(sorted)).valid);
  auto report = CheckSorted(sorted, options.order);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->sorted);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
