// End-to-end smoke tests: NEXSORT output must equal the in-memory recursive
// sort oracle byte for byte on canonical serializations.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(NexSortSmoke, TinyDocument) {
  const std::string xml =
      "<r><b id=\"2\"/><a id=\"9\"/><a id=\"1\"/></r>";
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted,
            "<r><a id=\"1\"></a><b id=\"2\"></b><a id=\"9\"></a></r>");
}

TEST(NexSortSmoke, MatchesOracleOnRandomTree) {
  RandomTreeGenerator generator(4, 6, {.seed = 7, .element_bytes = 40});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted = NexSortString(*xml, options);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

TEST(NexSortSmoke, MatchesOracleWithTinyMemory) {
  RandomTreeGenerator generator(5, 5, {.seed = 3, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  // 8 blocks of 512 bytes: subtree sorts must go external.
  std::string sorted = NexSortString(*xml, options, /*block_size=*/512,
                                     /*memory_blocks=*/8);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

TEST(NexSortSmoke, KeyPathBaselineMatchesOracle) {
  RandomTreeGenerator generator(4, 6, {.seed = 11, .element_bytes = 40});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  KeyPathSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string sorted = KeyPathSortString(*xml, options, /*block_size=*/512,
                                         /*memory_blocks=*/8);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
