// Document profiler tests.
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "xml/doc_stats.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(DocStats, CountsBasics) {
  auto stats = ProfileDocument(
      "<a x=\"1\" y=\"2\"><b><c/><c/><c/></b><b>text</b></a>");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->elements, 6u);
  EXPECT_EQ(stats->text_nodes, 1u);
  EXPECT_EQ(stats->attributes, 2u);
  EXPECT_EQ(stats->max_fanout, 3u);
  EXPECT_EQ(stats->height, 3);
  EXPECT_EQ(stats->distinct_names, 5u);  // a b c x y
  EXPECT_EQ(stats->text_bytes, 4u);
}

TEST(DocStats, PerLevelBreakdown) {
  auto stats = ProfileDocument("<a><b><c/><c/></b><b/></a>");
  ASSERT_TRUE(stats.ok());
  ASSERT_GE(stats->levels.size(), 4u);
  EXPECT_EQ(stats->levels[1].elements, 1u);  // a
  EXPECT_EQ(stats->levels[2].elements, 2u);  // b, b
  EXPECT_EQ(stats->levels[3].elements, 2u);  // c, c
  EXPECT_EQ(stats->levels[1].max_fanout, 2u);   // a's children
  EXPECT_EQ(stats->levels[2].max_fanout, 2u);   // first b's children
  EXPECT_EQ(stats->levels[1].total_children, 2u);
  EXPECT_EQ(stats->levels[2].total_children, 2u);
}

TEST(DocStats, AgreesWithGeneratorStats) {
  RandomTreeGenerator generator(5, 7, {.seed = 42, .element_bytes = 90});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok());
  auto stats = ProfileDocument(*xml);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->elements, generator.stats().elements);
  EXPECT_EQ(stats->text_nodes, generator.stats().text_nodes);
  EXPECT_EQ(stats->height, generator.stats().height);
  // Generator max_fanout counts element children only; the profiler also
  // counts text children, so it can only be >=.
  EXPECT_GE(stats->max_fanout, generator.stats().max_fanout);
  EXPECT_EQ(stats->bytes, xml->size());
}

TEST(DocStats, ReportMentionsTheHeadlineNumbers) {
  auto stats = ProfileDocument("<a><b/><b/></a>");
  ASSERT_TRUE(stats.ok());
  std::string report = stats->ToString(4096);
  EXPECT_NE(report.find("elements (N): 3"), std::string::npos);
  EXPECT_NE(report.find("max fan-out (k): 2"), std::string::npos);
  EXPECT_NE(report.find("suggested sort threshold t = 8.0 KiB"),
            std::string::npos);
}

TEST(DocStats, PropagatesParseErrors) {
  auto stats = ProfileDocument("<a><oops></a>");
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
