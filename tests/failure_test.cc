// Failure injection and misuse: device errors must propagate as Status (no
// crashes, no silent corruption), malformed XML is rejected, API misuse is
// reported, and budget exhaustion is a clean error.
#include <gtest/gtest.h>

#include "merge/structural_merge.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

std::string TestDocument() {
  RandomTreeGenerator generator(4, 6, {.seed = 60, .element_bytes = 100});
  auto xml = generator.GenerateString();
  EXPECT_TRUE(xml.ok());
  return xml.ok() ? std::move(xml).value() : std::string();
}

TEST(Failure, DeviceErrorAtEveryStagePropagates) {
  // Run clean once to learn the total I/O count, then re-run failing at a
  // spread of points across the sort (early scan, subtree sorts, run
  // writes, output phase). Every run must fail with IOError — never crash,
  // never report success.
  std::string xml = TestDocument();
  uint64_t total_ops = 0;
  {
    Env env(512, 8);
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", true);
    NexSorter sorter(env.get(), options);
    StringByteSource source(xml);
    std::string out;
    StringByteSink sink(&out);
    NEX_ASSERT_OK(sorter.Sort(&source, &sink));
    total_ops = env.device()->stats().total();
  }
  ASSERT_GT(total_ops, 8u);

  for (uint64_t point :
       {uint64_t{0}, total_ops / 4, total_ops / 2, 3 * total_ops / 4,
        total_ops - 1}) {
    Env env(512, 8);
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", true);
    NexSorter sorter(env.get(), options);
    env.device()->FailAfterOps(point, 1);
    StringByteSource source(xml);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.IsIOError())
        << "failure at op " << point << ": " << st.ToString();
  }
}

TEST(Failure, MalformedXmlRejectedCleanly) {
  for (const char* bad :
       {"<a><b></a>", "<a", "", "<a>&nope;</a>", "text", "<a/><b/>",
        "<a x=1></a>", "<a><![CDATA[open</a>"}) {
    Env env;
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", true);
    NexSorter sorter(env.get(), options);
    StringByteSource source(bad);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.IsParseError()) << "input: " << bad << " -> "
                                   << st.ToString();
  }
}

TEST(Failure, TinyBudgetRejected) {
  Env env(512, 4);
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  NexSorter sorter(env.get(), options);
  StringByteSource source("<a/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(sorter.Sort(&source, &sink).IsInvalidArgument());
}

TEST(Failure, SorterIsSingleUse) {
  Env env;
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  NexSorter sorter(env.get(), options);
  StringByteSource source("<a><b id=\"1\"/></a>");
  std::string out;
  StringByteSink sink(&out);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));
  StringByteSource again("<a/>");
  EXPECT_TRUE(sorter.Sort(&again, &sink).IsInvalidArgument());
}

TEST(Failure, KeyPathBaselineRejectsComplexRules) {
  Env env;
  KeyPathSortOptions options;
  OrderRule rule;
  rule.source = KeySource::kChildText;
  rule.argument = "a/b";
  options.order.AddRule(rule);
  KeyPathXmlSorter sorter(env.get(), options);
  StringByteSource source("<a/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(sorter.Sort(&source, &sink).IsNotSupported());
}

TEST(Failure, StructuralMergeRejectsComplexRules) {
  MergeOptions options;
  OrderRule rule;
  rule.source = KeySource::kChildText;
  rule.argument = "k";
  options.order.AddRule(rule);
  StringByteSource left("<a/>");
  StringByteSource right("<a/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_TRUE(
      StructuralMerge(&left, &right, &sink, options).IsNotSupported());
}

TEST(Failure, MergeRejectsMalformedInput) {
  MergeOptions options;
  options.order = OrderSpec::ByAttribute("id");
  StringByteSource left("<a><broken</a>");
  StringByteSource right("<a/>");
  std::string out;
  StringByteSink sink(&out);
  EXPECT_FALSE(StructuralMerge(&left, &right, &sink, options).ok());
}

TEST(Failure, HugeSingleElementDocument) {
  // One element whose attribute dwarfs the block size: must still sort.
  std::string xml =
      "<r><x id=\"2\" blob=\"" + std::string(5000, 'b') + "\"/>"
      "<x id=\"1\"/></r>";
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  std::string sorted = NexSortString(xml, options, 512, 16);
  EXPECT_EQ(sorted, OracleSort(xml, options.order));
}

TEST(Failure, DocumentWithOnlyRoot) {
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  EXPECT_EQ(NexSortString("<solo/>", options), "<solo></solo>");
}

TEST(Failure, DuplicateKeysKeepDocumentOrder) {
  const std::string xml =
      "<r><x id=\"5\" tag=\"first\"/><x id=\"5\" tag=\"second\"/>"
      "<x id=\"5\" tag=\"third\"/></r>";
  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", true);
  std::string sorted = NexSortString(xml, options);
  EXPECT_LT(sorted.find("first"), sorted.find("second"));
  EXPECT_LT(sorted.find("second"), sorted.find("third"));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
