// UnitXmlEmitter: end-tag reconstruction from level transitions (the
// Section 3.2 compaction inverse), escaping, and the external open-tag
// stack under deep nesting.
#include <gtest/gtest.h>

#include "core/unit_emitter.h"
#include "tests/test_util.h"

namespace nexsort {
namespace testing {
namespace {

ElementUnit Start(uint32_t level, std::string_view name,
                  std::vector<XmlAttribute> attrs = {}) {
  ElementUnit unit;
  unit.type = UnitType::kStart;
  unit.level = level;
  unit.name = name;
  unit.attributes = std::move(attrs);
  return unit;
}

ElementUnit Text(uint32_t level, std::string_view text) {
  ElementUnit unit;
  unit.type = UnitType::kText;
  unit.level = level;
  unit.text = text;
  return unit;
}

std::string Emit(const std::vector<ElementUnit>& units,
                 size_t block_size = 1024) {
  Env env(block_size, 8);
  NameDictionary dictionary;
  std::string out;
  StringByteSink sink(&out);
  UnitXmlEmitter emitter(env.device(), env.budget(), &dictionary, &sink);
  EXPECT_TRUE(emitter.init_status().ok());
  for (const ElementUnit& unit : units) {
    Status st = emitter.Emit(unit);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  EXPECT_TRUE(emitter.Finish().ok());
  return out;
}

TEST(UnitEmitter, ReconstructsSiblingsAndNesting) {
  // Levels: a(1){ b(2){ t(3) } b(2) } — the 2->2 transition closes one
  // element, the final Finish closes the rest.
  EXPECT_EQ(Emit({Start(1, "a"), Start(2, "b"), Text(3, "x"),
                  Start(2, "b")}),
            "<a><b>x</b><b></b></a>");
}

TEST(UnitEmitter, ClosesMultipleLevelsAtOnce) {
  // Transition from level 4 to level 2 closes 4, 3 (paper: l1 - l2 + 1
  // end tags between a level-l1 start and a level-l2 start... here the
  // next start at level 2 closes levels 4, 3, and 2's predecessor).
  EXPECT_EQ(Emit({Start(1, "r"), Start(2, "a"), Start(3, "b"),
                  Start(4, "c"), Start(2, "a2")}),
            "<r><a><b><c></c></b></a><a2></a2></r>");
}

TEST(UnitEmitter, EscapesAttributesAndText) {
  EXPECT_EQ(Emit({Start(1, "a", {{"k", "x<\">"}}), Text(2, "1 < 2 & 3")}),
            "<a k=\"x&lt;&quot;&gt;\">1 &lt; 2 &amp; 3</a>");
}

TEST(UnitEmitter, DeepNestingPagesTheTagStack) {
  // 2000 levels with a 128-byte block: the open-tag stack pages in and
  // out; names must survive the round trip through the dictionary.
  std::vector<ElementUnit> units;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) {
    units.push_back(Start(i + 1, "lvl" + std::to_string(i % 7)));
  }
  std::string out = Emit(units, /*block_size=*/128);
  // Count end tags and spot-check proper nesting at the tail.
  size_t ends = 0;
  size_t at = 0;
  while ((at = out.find("</", at)) != std::string::npos) {
    ++ends;
    at += 2;
  }
  EXPECT_EQ(ends, static_cast<size_t>(depth));
  EXPECT_EQ(out.substr(out.size() - 14), "</lvl1></lvl0>");
}

TEST(UnitEmitter, RejectsPointerUnits) {
  Env env;
  NameDictionary dictionary;
  std::string out;
  StringByteSink sink(&out);
  UnitXmlEmitter emitter(env.device(), env.budget(), &dictionary, &sink);
  ElementUnit pointer;
  pointer.type = UnitType::kPointer;
  pointer.level = 1;
  EXPECT_TRUE(emitter.Emit(pointer).IsInvalidArgument());
}

TEST(UnitEmitter, EndUnitsAreIgnored) {
  ElementUnit end;
  end.type = UnitType::kEnd;
  end.level = 2;
  EXPECT_EQ(Emit({Start(1, "a"), Start(2, "b"), end, Start(2, "c")}),
            "<a><b></b><c></c></a>");
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
