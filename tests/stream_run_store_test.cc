// Tests for block streams (extents), the run store, budget tracking, and
// memory-budget semantics.
#include <gtest/gtest.h>

#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

TEST(MemoryBudget, TracksAcquireRelease) {
  MemoryBudget budget(10);
  NEX_ASSERT_OK(budget.Acquire(4));
  EXPECT_EQ(budget.used_blocks(), 4u);
  EXPECT_EQ(budget.available_blocks(), 6u);
  budget.Release(2);
  EXPECT_EQ(budget.used_blocks(), 2u);
  EXPECT_EQ(budget.peak_blocks(), 4u);
  budget.Release(2);
}

TEST(MemoryBudget, RejectsOverCommit) {
  MemoryBudget budget(3);
  NEX_ASSERT_OK(budget.Acquire(3));
  EXPECT_TRUE(budget.Acquire(1).IsOutOfMemory());
  budget.Release(3);
}

TEST(MemoryBudget, ReservationReleasesOnDestruction) {
  MemoryBudget budget(5);
  {
    BudgetReservation reservation;
    NEX_ASSERT_OK(reservation.Acquire(&budget, 5));
    EXPECT_EQ(budget.used_blocks(), 5u);
  }
  EXPECT_EQ(budget.used_blocks(), 0u);
}

TEST(MemoryBudget, ReservationMoveTransfersOwnership) {
  MemoryBudget budget(5);
  BudgetReservation a;
  NEX_ASSERT_OK(a.Acquire(&budget, 2));
  BudgetReservation b = std::move(a);
  EXPECT_EQ(budget.used_blocks(), 2u);
  b.Reset();
  EXPECT_EQ(budget.used_blocks(), 0u);
}

TEST(BlockStream, RoundTripsArbitraryBytes) {
  Env env(128, 8);
  std::string payload;
  Random rng(5);
  for (int i = 0; i < 100; ++i) payload += rng.Identifier(37);

  auto range = StoreBytes(env.device(), env.budget(), payload);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->byte_size, payload.size());

  auto back = LoadBytes(env.device(), env.budget(), *range);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, payload);
}

TEST(BlockStream, EmptyExtent) {
  Env env;
  auto range = StoreBytes(env.device(), env.budget(), "");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->byte_size, 0u);
  auto back = LoadBytes(env.device(), env.budget(), *range);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(BlockStream, ReaderDeliversInChunks) {
  Env env(64, 8);
  std::string payload(500, 'p');
  auto range = StoreBytes(env.device(), env.budget(), payload);
  ASSERT_TRUE(range.ok());
  BlockStreamReader reader(env.device(), env.budget(), *range,
                           IoCategory::kInput);
  NEX_ASSERT_OK(reader.init_status());
  std::string got;
  char buf[33];
  while (true) {
    size_t n = 0;
    NEX_ASSERT_OK(reader.Read(buf, sizeof(buf), &n));
    if (n == 0) break;
    got.append(buf, n);
  }
  EXPECT_EQ(got, payload);
}

TEST(BlockStream, SequentialScanCostsOneIoPerBlock) {
  Env env(64, 8);
  std::string payload(640, 'q');  // exactly 10 blocks
  auto range = StoreBytes(env.device(), env.budget(), payload);
  ASSERT_TRUE(range.ok());
  uint64_t before = env.device()->stats().reads;
  auto back = LoadBytes(env.device(), env.budget(), *range);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(env.device()->stats().reads - before, 10u);
}

TEST(RunStore, WriteReadRoundTrip) {
  Env env(128, 8);
  RunStore store(env.device(), env.budget());
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  std::string payload;
  Random rng(9);
  for (int i = 0; i < 50; ++i) payload += rng.Identifier(61);
  NEX_ASSERT_OK(writer.Append(payload));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));
  EXPECT_EQ(handle.byte_size, payload.size());

  RunReader reader = store.OpenRun(handle);
  NEX_ASSERT_OK(reader.init_status());
  std::string back(payload.size(), '\0');
  NEX_ASSERT_OK(reader.ReadExact(back.data(), back.size()));
  EXPECT_EQ(back, payload);
  EXPECT_EQ(reader.bytes_remaining(), 0u);
}

TEST(RunStore, SeeksToOffset) {
  Env env(64, 8);
  RunStore store(env.device(), env.budget());
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  std::string payload;
  for (int i = 0; i < 100; ++i) payload += std::to_string(i) + ",";
  NEX_ASSERT_OK(writer.Append(payload));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));

  uint64_t offset = 173;
  RunReader reader = store.OpenRun(handle, offset);
  NEX_ASSERT_OK(reader.init_status());
  std::string back(payload.size() - offset, '\0');
  NEX_ASSERT_OK(reader.ReadExact(back.data(), back.size()));
  EXPECT_EQ(back, payload.substr(offset));
}

TEST(RunStore, InvalidHandleRejected) {
  Env env;
  RunStore store(env.device(), env.budget());
  RunHandle bogus;
  bogus.id = 7;
  RunReader reader = store.OpenRun(bogus);
  EXPECT_FALSE(reader.init_status().ok());
}

TEST(RunStore, OffsetPastEndRejected) {
  Env env;
  RunStore store(env.device(), env.budget());
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  NEX_ASSERT_OK(writer.Append("abc"));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));
  RunReader reader = store.OpenRun(handle, 4);
  EXPECT_TRUE(reader.init_status().IsInvalidArgument());
}

TEST(RunStore, FreeRunRecyclesBlocks) {
  Env env(64, 8);
  RunStore store(env.device(), env.budget());
  for (int cycle = 0; cycle < 20; ++cycle) {
    RunWriter writer = store.NewRun();
    NEX_ASSERT_OK(writer.init_status());
    NEX_ASSERT_OK(writer.Append(std::string(640, 'r')));
    RunHandle handle;
    NEX_ASSERT_OK(writer.Finish(&handle));
    NEX_ASSERT_OK(store.FreeRun(handle));
  }
  EXPECT_EQ(store.live_blocks(), 0u);
  EXPECT_LE(env.device()->num_blocks(), 10u);
}

TEST(RunStore, MultipleInterleavedRuns) {
  // NEXSORT writes a run while stacks also allocate blocks; runs must stay
  // correct even when their blocks are not contiguous on the device.
  Env env(64, 16);
  RunStore store(env.device(), env.budget());
  std::vector<RunHandle> handles;
  std::vector<std::string> payloads;
  for (int r = 0; r < 5; ++r) {
    RunWriter writer = store.NewRun();
    NEX_ASSERT_OK(writer.init_status());
    std::string payload(100 + r * 57, static_cast<char>('a' + r));
    NEX_ASSERT_OK(writer.Append(payload));
    RunHandle handle;
    NEX_ASSERT_OK(writer.Finish(&handle));
    handles.push_back(handle);
    payloads.push_back(payload);
    // Interleave an unrelated allocation to fragment the device layout.
    uint64_t id = 0;
    NEX_ASSERT_OK(env.device()->Allocate(1, &id));
  }
  for (int r = 0; r < 5; ++r) {
    RunReader reader = store.OpenRun(handles[r]);
    NEX_ASSERT_OK(reader.init_status());
    std::string back(payloads[r].size(), '\0');
    NEX_ASSERT_OK(reader.ReadExact(back.data(), back.size()));
    EXPECT_EQ(back, payloads[r]);
  }
}

TEST(RunStore, ReopeningCountsBlockAgain) {
  // Lemma 4.12 accounting: a block re-fetched after a seek is a new I/O.
  Env env(64, 8);
  RunStore store(env.device(), env.budget());
  RunWriter writer = store.NewRun();
  NEX_ASSERT_OK(writer.init_status());
  NEX_ASSERT_OK(writer.Append(std::string(64, 'z')));
  RunHandle handle;
  NEX_ASSERT_OK(writer.Finish(&handle));

  uint64_t before = env.device()->stats().reads;
  for (int i = 0; i < 3; ++i) {
    RunReader reader = store.OpenRun(handle);
    NEX_ASSERT_OK(reader.init_status());
    char byte = 0;
    NEX_ASSERT_OK(reader.ReadExact(&byte, 1));
  }
  EXPECT_EQ(env.device()->stats().reads - before, 3u);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
