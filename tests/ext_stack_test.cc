// Tests for the external stacks: LIFO correctness across paging, the
// no-prefetch policy, budget enforcement, region pops, and the O(N/B)
// paging-cost bounds of Lemmas 4.10 and 4.11.
#include <gtest/gtest.h>

#include "extmem/ext_stack.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

TEST(ExtStack, PushPopLifo) {
  Env env(256, 8);
  ExtStack<uint64_t> stack(env.device(), env.budget(), 1,
                           IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  for (uint64_t i = 0; i < 10; ++i) NEX_ASSERT_OK(stack.Push(i));
  EXPECT_EQ(stack.size(), 10u);
  for (uint64_t i = 10; i-- > 0;) {
    uint64_t value = 0;
    NEX_ASSERT_OK(stack.Pop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_TRUE(stack.empty());
}

TEST(ExtStack, PopEmptyFails) {
  Env env;
  ExtStack<int> stack(env.device(), env.budget(), 1,
                      IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  int value = 0;
  EXPECT_TRUE(stack.Pop(&value).IsInvalidArgument());
  EXPECT_TRUE(stack.Top(&value).IsInvalidArgument());
}

TEST(ExtStack, SurvivesPagingAcrossManyBlocks) {
  // 256-byte blocks hold 32 uint64_t records; push 1000 records so the
  // stack spans ~31 blocks with only one resident.
  Env env(256, 8);
  ExtStack<uint64_t> stack(env.device(), env.budget(), 1,
                           IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  for (uint64_t i = 0; i < 1000; ++i) NEX_ASSERT_OK(stack.Push(i * 7));
  for (uint64_t i = 1000; i-- > 0;) {
    uint64_t value = 0;
    NEX_ASSERT_OK(stack.Pop(&value));
    ASSERT_EQ(value, i * 7);
  }
}

TEST(ExtStack, MixedPushPopWorkload) {
  Env env(128, 8);
  ExtStack<uint32_t> stack(env.device(), env.budget(), 2,
                           IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  std::vector<uint32_t> reference;
  Random rng(42);
  for (int step = 0; step < 5000; ++step) {
    if (reference.empty() || rng.Uniform(3) != 0) {
      uint32_t value = static_cast<uint32_t>(rng.Next());
      NEX_ASSERT_OK(stack.Push(value));
      reference.push_back(value);
    } else {
      uint32_t value = 0;
      NEX_ASSERT_OK(stack.Pop(&value));
      ASSERT_EQ(value, reference.back());
      reference.pop_back();
    }
  }
  EXPECT_EQ(stack.size(), reference.size());
}

TEST(ExtStack, ReplaceTopUpdatesInPlace) {
  Env env;
  ExtStack<int> stack(env.device(), env.budget(), 1,
                      IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  NEX_ASSERT_OK(stack.Push(1));
  NEX_ASSERT_OK(stack.Push(2));
  NEX_ASSERT_OK(stack.ReplaceTop(99));
  int value = 0;
  NEX_ASSERT_OK(stack.Pop(&value));
  EXPECT_EQ(value, 99);
  NEX_ASSERT_OK(stack.Pop(&value));
  EXPECT_EQ(value, 1);
}

TEST(ExtStack, NoPrefetchPagingCostIsLinear) {
  // Push R records then pop them all: every full block is written at most
  // once and read at most once => I/Os <= 2 * ceil(R / per_block).
  const size_t block_size = 256;
  const uint64_t per_block = block_size / sizeof(uint64_t);
  Env env(block_size, 8);
  ExtStack<uint64_t> stack(env.device(), env.budget(), 1,
                           IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  const uint64_t n = 10000;
  for (uint64_t i = 0; i < n; ++i) NEX_ASSERT_OK(stack.Push(i));
  uint64_t value = 0;
  for (uint64_t i = 0; i < n; ++i) NEX_ASSERT_OK(stack.Pop(&value));
  uint64_t blocks = (n + per_block - 1) / per_block;
  EXPECT_LE(env.device()->stats().total(), 2 * blocks);
}

TEST(ExtStack, OscillationAtBlockBoundaryStaysBounded) {
  // Repeated push/pop around one block boundary with 2 resident blocks
  // must not thrash: the paper's path stack gets 2 blocks precisely so a
  // boundary-straddling workload pages O(1) per B operations.
  const size_t block_size = 128;
  Env env(block_size, 8);
  ExtStack<uint64_t> stack(env.device(), env.budget(), 2,
                           IoCategory::kPathStack);
  NEX_ASSERT_OK(stack.init_status());
  const uint64_t per_block = block_size / sizeof(uint64_t);
  for (uint64_t i = 0; i < per_block; ++i) NEX_ASSERT_OK(stack.Push(i));
  uint64_t before = env.device()->stats().total();
  for (int cycle = 0; cycle < 1000; ++cycle) {
    NEX_ASSERT_OK(stack.Push(1));
    uint64_t value = 0;
    NEX_ASSERT_OK(stack.Pop(&value));
  }
  // With 2 resident blocks the boundary oscillation costs no I/O at all.
  EXPECT_EQ(env.device()->stats().total(), before);
}

TEST(ExtStack, BudgetExhaustionSurfacesAtInit) {
  Env env(256, 1);
  ExtStack<int> stack(env.device(), env.budget(), 2,
                      IoCategory::kPathStack);
  EXPECT_TRUE(stack.init_status().IsOutOfMemory());
}

TEST(ExtByteStack, AppendAndPopRegion) {
  Env env(64, 8);
  ExtByteStack stack(env.device(), env.budget(), 1,
                     IoCategory::kDataStack);
  NEX_ASSERT_OK(stack.init_status());
  std::string payload;
  for (int i = 0; i < 100; ++i) {
    payload += "chunk" + std::to_string(i) + ";";
  }
  NEX_ASSERT_OK(stack.Append(payload));
  EXPECT_EQ(stack.size(), payload.size());

  std::string tail;
  NEX_ASSERT_OK(stack.PopRegion(payload.size() / 2, &tail));
  EXPECT_EQ(tail, payload.substr(payload.size() / 2));
  EXPECT_EQ(stack.size(), payload.size() / 2);

  // The stack keeps working after a truncation.
  NEX_ASSERT_OK(stack.Append("XYZ"));
  std::string rest;
  NEX_ASSERT_OK(stack.PopRegion(0, &rest));
  EXPECT_EQ(rest, payload.substr(0, payload.size() / 2) + "XYZ");
  EXPECT_EQ(stack.size(), 0u);
}

TEST(ExtByteStack, PopRegionAtExactBlockBoundary) {
  Env env(64, 8);
  ExtByteStack stack(env.device(), env.budget(), 1,
                     IoCategory::kDataStack);
  NEX_ASSERT_OK(stack.init_status());
  std::string data(256, 'a');  // exactly 4 blocks
  NEX_ASSERT_OK(stack.Append(data));
  std::string out;
  NEX_ASSERT_OK(stack.PopRegion(128, &out));  // boundary-aligned
  EXPECT_EQ(out, std::string(128, 'a'));
  EXPECT_EQ(stack.size(), 128u);
  NEX_ASSERT_OK(stack.PopRegion(0, &out));
  EXPECT_EQ(out, std::string(128, 'a'));
}

TEST(ExtByteStack, PopRegionPastTopRejected) {
  Env env;
  ExtByteStack stack(env.device(), env.budget(), 1,
                     IoCategory::kDataStack);
  NEX_ASSERT_OK(stack.init_status());
  NEX_ASSERT_OK(stack.Append("abc"));
  std::string out;
  EXPECT_TRUE(stack.PopRegion(10, &out).IsInvalidArgument());
}

TEST(ExtByteStack, RecyclesBlocksAfterPop) {
  // Repeated grow/shrink cycles must not grow the device unboundedly:
  // truncated blocks return to a free list.
  Env env(64, 8);
  ExtByteStack stack(env.device(), env.budget(), 1,
                     IoCategory::kDataStack);
  NEX_ASSERT_OK(stack.init_status());
  std::string out;
  for (int cycle = 0; cycle < 50; ++cycle) {
    NEX_ASSERT_OK(stack.Append(std::string(1000, 'x')));
    NEX_ASSERT_OK(stack.PopRegion(0, &out));
  }
  // One cycle uses ceil(1000/64) = 16 blocks; reuse keeps the device there.
  EXPECT_LE(env.device()->num_blocks(), 16u);
}

TEST(ExtByteStack, RandomizedRegionPopsMatchReference) {
  Env env(128, 8);
  ExtByteStack stack(env.device(), env.budget(), 1,
                     IoCategory::kDataStack);
  NEX_ASSERT_OK(stack.init_status());
  std::string reference;
  Random rng(77);
  for (int step = 0; step < 300; ++step) {
    if (reference.empty() || rng.Uniform(4) != 0) {
      std::string chunk = rng.Identifier(1 + rng.Uniform(200));
      NEX_ASSERT_OK(stack.Append(chunk));
      reference += chunk;
    } else {
      uint64_t from = rng.Uniform(reference.size() + 1);
      std::string out;
      NEX_ASSERT_OK(stack.PopRegion(from, &out));
      ASSERT_EQ(out, reference.substr(from));
      reference.resize(from);
    }
    ASSERT_EQ(stack.size(), reference.size());
  }
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
