// SAX parser conformance: the supported XML subset, escaping, error cases,
// and streaming across block boundaries.
#include <gtest/gtest.h>

#include "extmem/stream.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"

namespace nexsort {
namespace testing {
namespace {

// Drain a document into a flat event trace like "S:a A:id=1 T:hi E:a".
std::string Trace(std::string_view xml, SaxOptions options = {}) {
  StringByteSource source(xml);
  SaxParser parser(&source, options);
  std::string out;
  XmlEvent event;
  while (true) {
    auto more = parser.Next(&event);
    if (!more.ok()) return "ERROR:" + more.status().ToString();
    if (!*more) break;
    switch (event.type) {
      case XmlEventType::kStartElement:
        out += "S:" + event.name;
        for (const auto& attr : event.attributes) {
          out += " A:" + attr.name + "=" + attr.value;
        }
        break;
      case XmlEventType::kEndElement:
        out += "E:" + event.name;
        break;
      case XmlEventType::kText:
        out += "T:" + event.text;
        break;
    }
    out += "|";
  }
  return out;
}

TEST(SaxParser, SimpleDocument) {
  EXPECT_EQ(Trace("<a><b>hi</b></a>"), "S:a|S:b|T:hi|E:b|E:a|");
}

TEST(SaxParser, Attributes) {
  EXPECT_EQ(Trace("<a x=\"1\" y='two'/>"), "S:a A:x=1 A:y=two|E:a|");
}

TEST(SaxParser, AttributeWhitespaceAroundEquals) {
  EXPECT_EQ(Trace("<a x = \"1\"></a>"), "S:a A:x=1|E:a|");
}

TEST(SaxParser, SelfClosingTag) {
  EXPECT_EQ(Trace("<a><b/><c/></a>"), "S:a|S:b|E:b|S:c|E:c|E:a|");
}

TEST(SaxParser, EntityDecoding) {
  EXPECT_EQ(Trace("<a>x &lt;&gt;&amp;&quot;&apos; y</a>"),
            "S:a|T:x <>&\"' y|E:a|");
}

TEST(SaxParser, NumericCharacterReferences) {
  EXPECT_EQ(Trace("<a>&#65;&#x42;</a>"), "S:a|T:AB|E:a|");
}

TEST(SaxParser, EntityInAttributeValue) {
  EXPECT_EQ(Trace("<a k=\"&lt;&amp;&gt;\"/>"), "S:a A:k=<&>|E:a|");
}

TEST(SaxParser, CommentsSkipped) {
  EXPECT_EQ(Trace("<a><!-- no -->x<!-- - -- -->y</a>"), "S:a|T:x|T:y|E:a|");
}

TEST(SaxParser, ProcessingInstructionAndDeclarationSkipped) {
  EXPECT_EQ(Trace("<?xml version=\"1.0\"?><a><?php echo ?>t</a>"),
            "S:a|T:t|E:a|");
}

TEST(SaxParser, DoctypeSkipped) {
  EXPECT_EQ(Trace("<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>"),
            "S:a|T:x|E:a|");
}

TEST(SaxParser, CdataIsText) {
  EXPECT_EQ(Trace("<a><![CDATA[<raw> & stuff]]></a>"),
            "S:a|T:<raw> & stuff|E:a|");
}

TEST(SaxParser, WhitespaceTextSkippedByDefault) {
  EXPECT_EQ(Trace("<a>\n  <b/>\n</a>"), "S:a|S:b|E:b|E:a|");
}

TEST(SaxParser, WhitespaceTextKeptWhenRequested) {
  SaxOptions options;
  options.skip_whitespace_text = false;
  EXPECT_EQ(Trace("<a> <b/></a>", options), "S:a|T: |S:b|E:b|E:a|");
}

TEST(SaxParser, MismatchedEndTagRejected) {
  EXPECT_NE(Trace("<a><b></a></b>").find("ERROR:ParseError"),
            std::string::npos);
}

TEST(SaxParser, MismatchAllowedInDepthOnlyMode) {
  SaxOptions options;
  options.check_tag_names = false;
  EXPECT_EQ(Trace("<a><b></wrong></a>", options), "S:a|S:b|E:wrong|E:a|");
}

TEST(SaxParser, TruncatedDocumentRejected) {
  EXPECT_NE(Trace("<a><b>").find("ERROR:ParseError"), std::string::npos);
}

TEST(SaxParser, MultipleRootsRejected) {
  EXPECT_NE(Trace("<a/><b/>").find("ERROR:ParseError"), std::string::npos);
}

TEST(SaxParser, TextOutsideRootRejected) {
  EXPECT_NE(Trace("hello<a/>").find("ERROR:ParseError"), std::string::npos);
}

TEST(SaxParser, EmptyInputRejected) {
  EXPECT_NE(Trace("").find("ERROR:ParseError"), std::string::npos);
}

TEST(SaxParser, UnknownEntityRejected) {
  EXPECT_NE(Trace("<a>&bogus;</a>").find("ERROR:ParseError"),
            std::string::npos);
}

TEST(SaxParser, UnterminatedCommentRejected) {
  EXPECT_NE(Trace("<a><!-- open</a>").find("ERROR:ParseError"),
            std::string::npos);
}

TEST(SaxParser, CustomEntitiesFromInternalSubset) {
  EXPECT_EQ(Trace("<!DOCTYPE a [ <!ENTITY co \"ACME &amp; Sons\"> ]>"
                  "<a t=\"&co;\">&co;</a>"),
            "S:a A:t=ACME & Sons|T:ACME & Sons|E:a|");
}

TEST(SaxParser, EntityDefinedViaCharacterReference) {
  EXPECT_EQ(Trace("<!DOCTYPE a [ <!ENTITY e \"&#65;\"> ]><a>&e;</a>"),
            "S:a|T:A|E:a|");
}

TEST(SaxParser, UndefinedCustomEntityStillRejected) {
  EXPECT_NE(Trace("<!DOCTYPE a [ <!ENTITY x \"v\"> ]><a>&y;</a>")
                .find("ERROR:ParseError"),
            std::string::npos);
}

TEST(SaxParser, ParameterEntitiesSkippedGracefully) {
  // %param; declarations and external entities are skipped, not fatal.
  EXPECT_EQ(Trace("<!DOCTYPE a [ <!ENTITY % p SYSTEM \"x.dtd\"> "
                  "<!ENTITY ok \"fine\"> ]><a>&ok;</a>"),
            "S:a|T:fine|E:a|");
}

TEST(SaxParser, DeepNesting) {
  std::string xml;
  const int depth = 2000;
  for (int i = 0; i < depth; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < depth; ++i) xml += "</d>";
  StringByteSource source(xml);
  SaxParser parser(&source);
  XmlEvent event;
  int max_depth = 0;
  int events = 0;
  while (true) {
    auto more = parser.Next(&event);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++events;
    max_depth = std::max(max_depth, parser.depth());
  }
  EXPECT_EQ(max_depth, depth);
  EXPECT_EQ(events, 2 * depth + 1);
}

TEST(SaxParser, StreamsAcrossBlockBoundaries) {
  // Parse from a device-backed stream whose blocks are far smaller than
  // tags, so every production crosses buffer refills.
  Env env(32, 8);
  std::string xml = "<root>";
  for (int i = 0; i < 50; ++i) {
    xml += "<item key=\"" + std::string(40, 'k') + std::to_string(i) +
           "\">value text " + std::to_string(i) + "</item>";
  }
  xml += "</root>";
  auto range = StoreBytes(env.device(), env.budget(), xml);
  ASSERT_TRUE(range.ok());
  BlockStreamReader reader(env.device(), env.budget(), *range,
                           IoCategory::kInput);
  NEX_ASSERT_OK(reader.init_status());
  SaxParser parser(&reader);
  XmlEvent event;
  int items = 0;
  while (true) {
    auto more = parser.Next(&event);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    if (event.type == XmlEventType::kStartElement && event.name == "item") {
      ++items;
    }
  }
  EXPECT_EQ(items, 50);
  EXPECT_EQ(parser.bytes_consumed(), xml.size());
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
