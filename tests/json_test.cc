// The nested-data generalization (paper Section 6): sorting JSON in
// external memory through the element-tree encoding.
#include <gtest/gtest.h>

#include "nested/json.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace nexsort {
namespace testing {
namespace {

std::string SortJson(std::string_view json, JsonSortOptions options,
                     size_t block_size = 1024, uint64_t memory_blocks = 32,
                     Status* status_out = nullptr) {
  Env env(block_size, memory_blocks);
  JsonSorter sorter(env.get(), std::move(options));
  StringByteSource source(json);
  std::string out;
  StringByteSink sink(&out);
  Status st = sorter.Sort(&source, &sink);
  if (status_out != nullptr) {
    *status_out = st;
  } else {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return out;
}

std::string RoundTrip(std::string_view json) {
  JsonSortOptions options;
  options.sort_object_members = false;  // pure translation round trip
  return SortJson(json, options);
}

TEST(Json, RoundTripPreservesEverything) {
  EXPECT_EQ(RoundTrip("{}"), "{}");
  EXPECT_EQ(RoundTrip("[]"), "[]");
  EXPECT_EQ(RoundTrip("null"), "null");
  EXPECT_EQ(RoundTrip("true"), "true");
  EXPECT_EQ(RoundTrip("-1.5e3"), "-1.5e3");  // lexeme preserved verbatim
  EXPECT_EQ(RoundTrip("\"hi\""), "\"hi\"");
  EXPECT_EQ(RoundTrip("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"),
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}");
  EXPECT_EQ(RoundTrip("[[],{},\"\",0]"), "[[],{},\"\",0]");
}

TEST(Json, RoundTripEscapesAndUnicode) {
  EXPECT_EQ(RoundTrip("\"line\\nbreak\\t\\\"q\\\"\""),
            "\"line\\nbreak\\t\\\"q\\\"\"");
  // \u sequences decode to UTF-8 and re-encode as raw UTF-8.
  EXPECT_EQ(RoundTrip("\"\\u20AC\""), "\"\xE2\x82\xAC\"");
  // Surrogate pair.
  EXPECT_EQ(RoundTrip("\"\\uD83D\\uDE00\""), "\"\xF0\x9F\x98\x80\"");
  // Whitespace-only strings survive (the attribute encoding's raison
  // d'être).
  EXPECT_EQ(RoundTrip("\" \""), "\" \"");
  EXPECT_EQ(RoundTrip("{\"k\":\"  \"}"), "{\"k\":\"  \"}");
}

TEST(Json, RoundTripIgnoresInputWhitespace) {
  EXPECT_EQ(RoundTrip("  {  \"a\" :\n[ 1 , 2 ]\t}  "), "{\"a\":[1,2]}");
}

TEST(Json, SortsObjectMembers) {
  JsonSortOptions options;
  EXPECT_EQ(SortJson("{\"z\":1,\"a\":2,\"m\":{\"y\":0,\"b\":9}}", options),
            "{\"a\":2,\"m\":{\"b\":9,\"y\":0},\"z\":1}");
}

TEST(Json, MemberSortKeepsArraysInOrder) {
  JsonSortOptions options;
  EXPECT_EQ(SortJson("{\"b\":[3,1,2],\"a\":0}", options),
            "{\"a\":0,\"b\":[3,1,2]}");
}

TEST(Json, SortsArraysByMemberPath) {
  JsonSortOptions options;
  options.sort_object_members = false;
  options.sort_arrays_by = "id";
  options.numeric_array_keys = true;
  EXPECT_EQ(SortJson("[{\"id\":30,\"v\":\"c\"},{\"id\":4,\"v\":\"a\"},"
                     "{\"id\":11,\"v\":\"b\"}]",
                     options),
            "[{\"id\":4,\"v\":\"a\"},{\"id\":11,\"v\":\"b\"},"
            "{\"id\":30,\"v\":\"c\"}]");
}

TEST(Json, SortsArraysByNestedPath) {
  JsonSortOptions options;
  options.sort_object_members = false;
  options.sort_arrays_by = "meta/rank";
  options.numeric_array_keys = true;
  EXPECT_EQ(
      SortJson("[{\"meta\":{\"rank\":2}},{\"meta\":{\"rank\":1}}]", options),
      "[{\"meta\":{\"rank\":1}},{\"meta\":{\"rank\":2}}]");
}

TEST(Json, SortsScalarArraysByValue) {
  JsonSortOptions options;
  options.sort_object_members = false;
  options.sort_arrays_by_value = true;
  EXPECT_EQ(SortJson("[\"pear\",\"apple\",\"fig\"]", options),
            "[\"apple\",\"fig\",\"pear\"]");
  options.numeric_array_keys = true;
  EXPECT_EQ(SortJson("[30,4,11]", options), "[4,11,30]");
}

TEST(Json, ItemsWithoutKeyKeepDocumentOrderFirst) {
  JsonSortOptions options;
  options.sort_object_members = false;
  options.sort_arrays_by = "id";
  EXPECT_EQ(SortJson("[{\"id\":\"b\"},{\"x\":1},{\"id\":\"a\"},null]",
                     options),
            "[{\"x\":1},null,{\"id\":\"a\"},{\"id\":\"b\"}]");
}

TEST(Json, LargeDocumentUnderTightMemoryMatchesReference) {
  // Build a large object of shuffled members, each holding an array of
  // keyed records; compare against an order computed independently.
  Random rng(91);
  std::vector<int> member_ids(500);
  for (int i = 0; i < 500; ++i) member_ids[i] = i;
  for (int i = 499; i > 0; --i) {
    std::swap(member_ids[i], member_ids[rng.Uniform(i + 1)]);
  }
  std::string json = "{";
  for (int i = 0; i < 500; ++i) {
    if (i) json += ",";
    json += "\"k" + std::to_string(1000 + member_ids[i]) + "\":{\"payload\":\"" +
            rng.Identifier(40) + "\"}";
  }
  json += "}";

  JsonSortOptions options;
  // 12 blocks: 2 for the pipeline's stream buffers + the sorter's minimum 8.
  std::string sorted = SortJson(json, options, /*block_size=*/512,
                                /*memory_blocks=*/12);
  // Keys k1000..k1499 must appear in ascending (lexicographic) order.
  size_t prev = 0;
  for (int i = 0; i < 500; ++i) {
    std::string needle = "\"k" + std::to_string(1000 + i) + "\":";
    size_t at = sorted.find(needle);
    ASSERT_NE(at, std::string::npos) << needle;
    EXPECT_GT(at, prev);
    prev = at;
  }
}

TEST(Json, SortIsIdempotent) {
  const std::string json =
      "{\"b\":[{\"id\":2},{\"id\":1}],\"a\":{\"z\":0,\"y\":1}}";
  JsonSortOptions options;
  options.sort_arrays_by = "id";
  options.numeric_array_keys = true;
  std::string once = SortJson(json, options);
  JsonSortOptions options2 = options;
  std::string twice = SortJson(once, options2);
  EXPECT_EQ(once, twice);
}

TEST(Json, MalformedInputRejected) {
  for (const char* bad :
       {"{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"open", "01x", "[1 2]",
        "{\"a\":1,}", "\"\\u12\""}) {
    JsonSortOptions options;
    Status status;
    SortJson(bad, options, 1024, 32, &status);
    EXPECT_FALSE(status.ok()) << "input: " << bad;
  }
}

TEST(Json, TrailingGarbageRejected) {
  JsonSortOptions options;
  Status status;
  SortJson("{} extra", options, 1024, 32, &status);
  EXPECT_TRUE(status.IsParseError());
}

TEST(Json, StatsReported) {
  Env env;
  JsonSorter sorter(env.get(), {});
  StringByteSource source("{\"a\":[1,2],\"b\":{}}");
  std::string out;
  StringByteSink sink(&out);
  NEX_ASSERT_OK(sorter.Sort(&source, &sink));
  EXPECT_EQ(sorter.stats().objects, 2u);
  EXPECT_EQ(sorter.stats().arrays, 1u);
  EXPECT_GE(sorter.stats().values, 5u);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
