// Feature-path tests: the Section 3.2 extensions (graceful degeneration,
// depth-limited sorting, complex ordering criteria, compaction toggles).
#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/random.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

TEST(NexSortFeatures, GracefulDegenerationOnFlatDocument) {
  // A flat document (root + many children): without graceful degeneration
  // NEXSORT pushes everything onto the data stack before the single final
  // sort; with it, incomplete runs form as memory fills and are merged.
  ShapeGenerator generator({200}, {.seed = 5, .element_bytes = 80});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.graceful_degeneration = true;
  NexSortStats stats;
  std::string sorted = NexSortString(*xml, options, /*block_size=*/512,
                                     /*memory_blocks=*/8, &stats);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
  EXPECT_GT(stats.fragment_runs, 0u) << "expected incomplete sorted runs";
}

TEST(NexSortFeatures, GracefulDegenerationNestedMatchesOracle) {
  RandomTreeGenerator generator(5, 7, {.seed = 21, .element_bytes = 70});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  options.graceful_degeneration = true;
  std::string sorted = NexSortString(*xml, options, /*block_size=*/512,
                                     /*memory_blocks=*/8);
  EXPECT_EQ(sorted, OracleSort(*xml, options.order));
}

TEST(NexSortFeatures, DepthLimitedSorting) {
  RandomTreeGenerator generator(5, 5, {.seed = 13, .element_bytes = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  for (int depth_limit : {1, 2, 3}) {
    NexSortOptions options;
    options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    options.depth_limit = depth_limit;
    std::string sorted = NexSortString(*xml, options);
    EXPECT_EQ(sorted, OracleSort(*xml, options.order, depth_limit))
        << "depth limit " << depth_limit;
  }
}

TEST(NexSortFeatures, ComplexOrderingByChildText) {
  const std::string xml =
      "<people>"
      "<person><info><name>Walker</name></info></person>"
      "<person><info><name>Adams</name></info></person>"
      "<person><info><name>Mills</name></info></person>"
      "</people>";
  NexSortOptions options;
  OrderRule rule;
  rule.element = "person";
  rule.source = KeySource::kChildText;
  rule.argument = "info/name";
  options.order.AddRule(rule);
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted, OracleSort(xml, options.order));
  EXPECT_LT(sorted.find("Adams"), sorted.find("Mills"));
  EXPECT_LT(sorted.find("Mills"), sorted.find("Walker"));
}

TEST(NexSortFeatures, ComplexOrderingByOwnText) {
  const std::string xml =
      "<list><w>pear</w><w>apple</w><w>fig</w></list>";
  NexSortOptions options;
  OrderRule rule;
  rule.element = "w";
  rule.source = KeySource::kTextContent;
  options.order.AddRule(rule);
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted, "<list><w>apple</w><w>fig</w><w>pear</w></list>");
}

TEST(NexSortFeatures, ComplexOrderingLargeMatchesOracle) {
  // Build a document whose elements are keyed by a grandchild's text.
  std::string xml = "<all>";
  nexsort::Random rng(99);
  for (int i = 0; i < 120; ++i) {
    xml += "<rec><meta><k>" + rng.Identifier(8) + "</k></meta><v>" +
           rng.Identifier(12) + "</v></rec>";
  }
  xml += "</all>";

  NexSortOptions options;
  OrderRule rule;
  rule.element = "rec";
  rule.source = KeySource::kChildText;
  rule.argument = "meta/k";
  options.order.AddRule(rule);
  std::string sorted = NexSortString(xml, options, /*block_size=*/256,
                                     /*memory_blocks=*/32);
  EXPECT_EQ(sorted, OracleSort(xml, options.order));
}

TEST(NexSortFeatures, CompactionTogglesPreserveOutput) {
  RandomTreeGenerator generator(4, 5, {.seed = 31, .element_bytes = 60});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  std::string oracle =
      OracleSort(*xml, OrderSpec::ByAttribute("id", /*numeric=*/true));

  for (bool use_dictionary : {true, false}) {
    for (bool keep_end_units : {false, true}) {
      NexSortOptions options;
      options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
      options.use_dictionary = use_dictionary;
      options.keep_end_units = keep_end_units;
      EXPECT_EQ(NexSortString(*xml, options), oracle)
          << "dictionary=" << use_dictionary
          << " end_units=" << keep_end_units;
    }
  }
}

TEST(NexSortFeatures, DescendingOrder) {
  const std::string xml =
      "<r><x id=\"b\"/><x id=\"abc\"/><x id=\"a\"/><x id=\"ab\"/></r>";
  NexSortOptions options;
  OrderRule rule;
  rule.element = "*";
  rule.source = KeySource::kAttribute;
  rule.argument = "id";
  rule.descending = true;
  options.order.AddRule(rule);
  std::string sorted = NexSortString(xml, options);
  EXPECT_EQ(sorted,
            "<r><x id=\"b\"></x><x id=\"abc\"></x><x id=\"ab\"></x>"
            "<x id=\"a\"></x></r>");
}

TEST(NexSortFeatures, SortIsIdempotent) {
  RandomTreeGenerator generator(4, 6, {.seed = 17, .element_bytes = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  NexSortOptions options;
  options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string once = NexSortString(*xml, options);
  NexSortOptions options2;
  options2.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
  std::string twice = NexSortString(once, options2);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
