// OrderSpec: rule matching, key extraction, and the order-preserving
// normalized key encodings (numeric, descending).
#include <gtest/gtest.h>

#include "core/order_spec.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "xml/dom.h"

namespace nexsort {
namespace testing {
namespace {

TEST(OrderSpec, FirstMatchingRuleWins) {
  OrderSpec spec;
  OrderRule specific;
  specific.element = "employee";
  specific.source = KeySource::kAttribute;
  specific.argument = "ID";
  spec.AddRule(specific);
  OrderRule fallback;
  fallback.element = "*";
  fallback.source = KeySource::kAttribute;
  fallback.argument = "name";
  spec.AddRule(fallback);

  EXPECT_EQ(spec.RuleFor("employee")->argument, "ID");
  EXPECT_EQ(spec.RuleFor("region")->argument, "name");
}

TEST(OrderSpec, NoRuleMeansDocumentOrder) {
  OrderSpec spec;
  EXPECT_EQ(spec.RuleFor("anything"), nullptr);
  EXPECT_EQ(spec.KeyForStartTag("x", {{"id", "5"}}), "");
}

TEST(OrderSpec, AttributeKeyExtraction) {
  OrderSpec spec = OrderSpec::ByAttribute("id");
  EXPECT_EQ(spec.KeyForStartTag("x", {{"id", "zebra"}}), "zebra");
  EXPECT_EQ(spec.KeyForStartTag("x", {{"other", "v"}}), "");
}

TEST(OrderSpec, TagNameKey) {
  OrderSpec spec = OrderSpec::ByTagName();
  EXPECT_EQ(spec.KeyForStartTag("branch", {}), "branch");
}

TEST(OrderSpec, ComplexRulesDetected) {
  OrderSpec simple = OrderSpec::ByAttribute("id");
  EXPECT_FALSE(simple.HasComplexRules());
  OrderSpec complex;
  OrderRule rule;
  rule.source = KeySource::kChildText;
  rule.argument = "name/last";
  complex.AddRule(rule);
  EXPECT_TRUE(complex.HasComplexRules());
}

TEST(OrderSpec, NumericEncodingOrdersLikeDoubles) {
  OrderRule rule;
  rule.numeric = true;
  Random rng(17);
  std::vector<double> values{0,    -0.0, 1,     -1,    0.5,  -0.5,
                             1e10, -1e10, 1e-10, 99999, -42.5};
  for (int i = 0; i < 200; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 1e6);
  }
  for (double a : values) {
    for (double b : values) {
      std::string ka = OrderSpec::NormalizeKey(rule, std::to_string(a));
      std::string kb = OrderSpec::NormalizeKey(rule, std::to_string(b));
      double da = std::stod(std::to_string(a));
      double db = std::stod(std::to_string(b));
      if (da < db) {
        EXPECT_LT(ka, kb) << a << " vs " << b;
      } else if (db < da) {
        EXPECT_LT(kb, ka) << a << " vs " << b;
      }
    }
  }
}

TEST(OrderSpec, NumericUnparseableSortsFirst) {
  OrderRule rule;
  rule.numeric = true;
  EXPECT_EQ(OrderSpec::NormalizeKey(rule, "not a number"), "");
  EXPECT_LT(OrderSpec::NormalizeKey(rule, "garbage"),
            OrderSpec::NormalizeKey(rule, "-1e30"));
}

TEST(OrderSpec, DescendingReversesOrderIncludingPrefixes) {
  OrderRule rule;
  rule.descending = true;
  auto enc = [&](std::string_view raw) {
    return OrderSpec::NormalizeKey(rule, raw);
  };
  EXPECT_LT(enc("b"), enc("a"));
  EXPECT_LT(enc("ab"), enc("a"));       // longer first under descending
  EXPECT_LT(enc("abc"), enc("ab"));
  EXPECT_EQ(enc("same"), enc("same"));
  std::string with_zero("a\0", 2);
  EXPECT_LT(enc(with_zero), enc("a"));  // "a\0" > "a" ascending
  std::string two_zeros("a\0\0", 3);
  EXPECT_LT(enc(two_zeros), enc(with_zero));
}

TEST(OrderSpec, DescendingNumericComposes) {
  OrderRule rule;
  rule.numeric = true;
  rule.descending = true;
  auto enc = [&](std::string_view raw) {
    return OrderSpec::NormalizeKey(rule, raw);
  };
  EXPECT_LT(enc("10"), enc("2"));
  EXPECT_LT(enc("2"), enc("-5"));
}

TEST(OrderSpec, RandomizedDescendingIsExactReverse) {
  OrderRule asc;
  OrderRule desc;
  desc.descending = true;
  Random rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::string a = rng.Identifier(rng.Uniform(6));
    std::string b = rng.Identifier(rng.Uniform(6));
    if (rng.OneIn(4)) a.push_back('\0');
    if (rng.OneIn(4)) b.push_back('\0');
    std::string asc_a = OrderSpec::NormalizeKey(asc, a);
    std::string asc_b = OrderSpec::NormalizeKey(asc, b);
    std::string desc_a = OrderSpec::NormalizeKey(desc, a);
    std::string desc_b = OrderSpec::NormalizeKey(desc, b);
    if (asc_a < asc_b) {
      EXPECT_GT(desc_a, desc_b);
    } else if (asc_b < asc_a) {
      EXPECT_GT(desc_b, desc_a);
    } else {
      EXPECT_EQ(desc_a, desc_b);
    }
  }
}

TEST(OrderSpec, KeyForNodeResolvesChildPath) {
  auto root = ParseDom(
      "<employee ID=\"3\"><personalInfo><name><lastName>Ng</lastName>"
      "</name></personalInfo></employee>");
  ASSERT_TRUE(root.ok());
  OrderSpec spec;
  OrderRule rule;
  rule.element = "employee";
  rule.source = KeySource::kChildText;
  rule.argument = "personalInfo/name/lastName";
  spec.AddRule(rule);
  EXPECT_EQ(spec.KeyForNode(**root), "Ng");
}

TEST(OrderSpec, KeyForNodeOwnText) {
  auto root = ParseDom("<w>apple</w>");
  ASSERT_TRUE(root.ok());
  OrderSpec spec;
  OrderRule rule;
  rule.source = KeySource::kTextContent;
  spec.AddRule(rule);
  EXPECT_EQ(spec.KeyForNode(**root), "apple");
}

TEST(OrderSpec, KeyForNodeMissingPathIsEmpty) {
  auto root = ParseDom("<employee><other/></employee>");
  ASSERT_TRUE(root.ok());
  OrderSpec spec;
  OrderRule rule;
  rule.source = KeySource::kChildText;
  rule.argument = "name/last";
  spec.AddRule(rule);
  EXPECT_EQ(spec.KeyForNode(**root), "");
}

TEST(OrderSpec, TextNodeRule) {
  OrderSpec spec;
  OrderRule rule;
  rule.element = "#text";
  rule.source = KeySource::kTextContent;
  spec.AddRule(rule);
  EXPECT_EQ(spec.KeyForText("some text"), "some text");
  OrderSpec no_rule;
  EXPECT_EQ(no_rule.KeyForText("some text"), "");
}

TEST(OrderSpec, KeySeqLessSemantics) {
  EXPECT_TRUE(KeySeqLess("a", 9, "b", 1));
  EXPECT_TRUE(KeySeqLess("a", 1, "a", 2));
  EXPECT_FALSE(KeySeqLess("a", 2, "a", 1));
  EXPECT_FALSE(KeySeqLess("b", 1, "a", 9));
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
