// NEXSORT_DCHECK layer (docs/STATIC_ANALYSIS.md): passing checks are
// silent in every build; failing checks die with a diagnostic when the
// layer is enabled (Debug / sanitizer presets) and evaluate nothing when
// it is disabled (Release).
#include "util/dcheck.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace nexsort {
namespace {

TEST(DcheckTest, PassingChecksAreSilent) {
  NEXSORT_DCHECK(1 + 1 == 2);
  NEXSORT_DCHECK_MSG(true, "never printed");
  NEXSORT_DCHECK_EQ(4, 4);
  NEXSORT_DCHECK_NE(4, 5);
  NEXSORT_DCHECK_LE(4, 4);
  NEXSORT_DCHECK_LT(4, 5);
  NEXSORT_DCHECK_GE(5, 4);
  NEXSORT_DCHECK_OK(Status::OK());
}

#if NEXSORT_DCHECK_ENABLED

TEST(DcheckDeathTest, FailedCheckDiesWithExpression) {
  EXPECT_DEATH(NEXSORT_DCHECK(2 + 2 == 5), "NEXSORT_DCHECK failed");
  EXPECT_DEATH(NEXSORT_DCHECK_MSG(false, "the detail string"),
               "the detail string");
}

TEST(DcheckDeathTest, BinaryFormPrintsBothOperands) {
  const uint64_t lhs = 3;
  const uint64_t rhs = 7;
  EXPECT_DEATH(NEXSORT_DCHECK_EQ(lhs, rhs), "3.*7");
}

TEST(DcheckDeathTest, OkFormPrintsTheStatus) {
  EXPECT_DEATH(NEXSORT_DCHECK_OK(Status::Corruption("bad frame")),
               "bad frame");
}

#else  // !NEXSORT_DCHECK_ENABLED

TEST(DcheckTest, DisabledChecksDoNotEvaluate) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return false;
  };
  NEXSORT_DCHECK(bump());
  NEXSORT_DCHECK_MSG(bump(), "unused");
  EXPECT_EQ(calls, 0);
}

#endif  // NEXSORT_DCHECK_ENABLED

}  // namespace
}  // namespace nexsort
