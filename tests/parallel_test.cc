// Parallel-pipeline tests: bounded-queue shutdown semantics, worker-pool
// execution, AsyncSpiller ordering and sticky-error propagation (a failing
// background spill write must surface from Finish), budget exactness under
// concurrent Acquire/Release, and determinism property tests asserting the
// overlapped pipeline (threads in {1,2,4}, with and without merge
// prefetching) produces byte-identical output — and, where the device is
// uncached, identical logical I/O — to the serial pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"
#include "extmem/run_store.h"
#include "extmem/stream.h"
#include "parallel/async_spiller.h"
#include "parallel/bounded_queue.h"
#include "parallel/parallel.h"
#include "parallel/worker_pool.h"
#include "sort/external_merge_sort.h"
#include "tests/test_util.h"
#include "xml/generator.h"

namespace nexsort {
namespace testing {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueue, DeliversInFifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 2);
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 3);
  EXPECT_FALSE(queue.TryPop(&value));
}

TEST(BoundedQueue, CloseDrainsQueuedItemsThenReportsEmpty) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(7));
  ASSERT_TRUE(queue.Push(8));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  // Items enqueued before Close still come out; pushes are rejected.
  EXPECT_FALSE(queue.Push(9));
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 7);
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 8);
  EXPECT_FALSE(queue.Pop(&value));
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    int value = 0;
    bool got = queue.Pop(&value);  // blocks: queue is empty
    EXPECT_FALSE(got);
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(popped.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueue, FullQueueExertsBackpressureUntilPop) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pushed.load());
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 2);
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndDropsItem) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(2));  // blocked on full queue, then closed
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  // The dropped item never entered the queue.
  int value = 0;
  EXPECT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_FALSE(queue.Pop(&value));
}

// ---------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPool, ZeroThreadsRunsTasksInlineOnCaller) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::thread::id ran_on;
  EXPECT_TRUE(pool.Submit([&] { ran_on = std::this_thread::get_id(); }));
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(WorkerPool, ExecutesEverySubmittedTaskBeforeDestruction) {
  std::atomic<int> executed{0};
  {
    WorkerPool pool(2);
    EXPECT_EQ(pool.size(), 2u);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pool.Submit([&] {
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
  }  // the destructor drains the queue and joins the workers
  EXPECT_EQ(executed.load(), 200);
}

TEST(WorkerPool, TasksActuallyRunOffTheSubmittingThread) {
  WorkerPool pool(1);
  std::thread::id ran_on;
  std::atomic<bool> done{false};
  ASSERT_TRUE(pool.Submit([&] {
    ran_on = std::this_thread::get_id();
    done.store(true, std::memory_order_release);
  }));
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  EXPECT_NE(ran_on, std::this_thread::get_id());
}

// ---------------------------------------------------------------------------
// AsyncSpiller

TEST(AsyncSpiller, RunsJobsInSubmissionOrder) {
  WorkerPool pool(2);
  AsyncSpiller spiller(&pool);
  std::mutex mutex;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    NEX_ASSERT_OK(spiller.Submit([&, i] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
      return Status();
    }));
  }
  NEX_ASSERT_OK(spiller.Drain());
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GE(spiller.busy_seconds(), 0.0);
}

TEST(AsyncSpiller, NullPoolRunsJobsInline) {
  AsyncSpiller spiller(nullptr);
  bool ran = false;
  NEX_ASSERT_OK(spiller.Submit([&] {
    ran = true;
    return Status();
  }));
  EXPECT_TRUE(ran);
  NEX_ASSERT_OK(spiller.Drain());
}

TEST(AsyncSpiller, ErrorIsStickyAndLaterJobsNeverRun) {
  WorkerPool pool(1);
  AsyncSpiller spiller(&pool);
  NEX_ASSERT_OK(spiller.Submit([] { return Status(); }));
  NEX_ASSERT_OK(
      spiller.Submit([] { return Status::IOError("lost spill write"); }));
  // The failing job is in flight (or done); every later submission must
  // report the error and must not run its job.
  bool ran = false;
  Status st;
  for (int i = 0; i < 10 && st.ok(); ++i) {
    st = spiller.Submit([&] {
      ran = true;
      return Status();
    });
  }
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("lost spill write"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(ran);
  Status drained = spiller.Drain();
  EXPECT_FALSE(drained.ok());
  EXPECT_NE(drained.ToString().find("lost spill write"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MemoryBudget under concurrency

TEST(MemoryBudgetConcurrency, ConcurrentAcquireReleaseStaysExact) {
  MemoryBudget budget(64);
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, t] {
      std::mt19937 rng(static_cast<uint32_t>(t) + 1);
      for (int i = 0; i < kIterations; ++i) {
        uint64_t count = 1 + rng() % 4;
        if (budget.Acquire(count).ok()) {
          budget.Release(count);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(budget.used_blocks(), 0u);
  EXPECT_EQ(budget.release_underflows(), 0u);
  EXPECT_LE(budget.peak_blocks(), 64u);
}

// ---------------------------------------------------------------------------
// ExternalMergeSorter: overlapped run formation

struct SortRun {
  std::vector<std::pair<std::string, std::string>> records;
  ExtSortStats stats;
  ParallelStats pstats;
};

// Sort a deterministic record set through ExternalMergeSorter with the
// given worker count, small enough blocks to force several spills and
// large enough buffers to trigger partitioned sorts (>= 4096 records per
// buffer) when workers are available.
SortRun RunExtSort(uint32_t threads, size_t record_count) {
  SortRun result;
  auto device = NewMemoryBlockDevice(4096);
  MemoryBudget budget(100);
  RunStore store(device.get(), &budget);

  WorkerPool pool(threads);
  ParallelContext context(ParallelOptions{.threads = threads}, &pool);
  ExtSortOptions options;
  options.memory_blocks = 32;
  if (threads > 0) options.parallel = &context;

  ExternalMergeSorter sorter(&store, options);
  EXPECT_TRUE(sorter.init_status().ok()) << sorter.init_status().ToString();

  std::mt19937 rng(1234);
  for (size_t i = 0; i < record_count; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "%08u",
                  static_cast<unsigned>(rng() % 10000000));
    char value[16];
    std::snprintf(value, sizeof(value), "v%zu", i);
    Status st = sorter.Add(key, value);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  Status st = sorter.Finish();
  EXPECT_TRUE(st.ok()) << st.ToString();

  std::string key, value;
  while (true) {
    auto more = sorter.Next(&key, &value);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    result.records.emplace_back(key, value);
  }
  result.stats = sorter.stats();
  result.pstats = sorter.parallel_stats();
  return result;
}

TEST(ParallelExtSort, WorkersProduceIdenticalRecordStream) {
  constexpr size_t kRecords = 20000;
  SortRun serial = RunExtSort(0, kRecords);
  ASSERT_EQ(serial.records.size(), kRecords);
  EXPECT_GT(serial.stats.initial_runs, 1u);  // the workload really spilled
  EXPECT_EQ(serial.pstats.async_spills, 0u);
  EXPECT_EQ(serial.pstats.parallel_sorts, 0u);

  for (uint32_t threads : {1u, 2u, 4u}) {
    SortRun parallel = RunExtSort(threads, kRecords);
    EXPECT_EQ(parallel.records, serial.records) << "threads=" << threads;
    EXPECT_EQ(parallel.stats.initial_runs, serial.stats.initial_runs);
    EXPECT_EQ(parallel.stats.merge_passes, serial.stats.merge_passes);
    // The pipeline genuinely engaged: spills went to the background and
    // buffer sorts were partitioned across the pool (with >= 2 workers).
    EXPECT_GT(parallel.pstats.async_spills, 0u) << "threads=" << threads;
    if (threads >= 2) {
      EXPECT_GT(parallel.pstats.parallel_sorts, 0u) << "threads=" << threads;
      EXPECT_GE(parallel.pstats.sort_partitions,
                2 * parallel.pstats.parallel_sorts);
    }
  }
}

TEST(ParallelExtSort, TinyBudgetDeclinesDoubleBufferingAndStaysSerial) {
  auto device = NewMemoryBlockDevice(512);
  // 8 blocks total: the sorter's 7-block buffer + 1 writer block leave
  // nothing for a second buffer, so engagement must be declined.
  MemoryBudget budget(8);
  RunStore store(device.get(), &budget);
  WorkerPool pool(2);
  ParallelContext context(ParallelOptions{.threads = 2}, &pool);
  ExtSortOptions options;
  options.memory_blocks = 8;
  options.parallel = &context;
  ExternalMergeSorter sorter(&store, options);
  NEX_ASSERT_OK(sorter.init_status());

  std::mt19937 rng(99);
  for (int i = 0; i < 2000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "%06u",
                  static_cast<unsigned>(rng() % 1000000));
    NEX_ASSERT_OK(sorter.Add(key, "x"));
  }
  NEX_ASSERT_OK(sorter.Finish());

  const ParallelStats& pstats = sorter.parallel_stats();
  EXPECT_EQ(pstats.async_spills, 0u);
  EXPECT_GT(pstats.sync_spills, 0u);
  EXPECT_GT(pstats.double_buffer_declined, 0u);

  // The output is still fully sorted.
  std::string key, value, previous;
  while (true) {
    auto more = sorter.Next(&key, &value);
    NEX_ASSERT_OK(more.status());
    if (!*more) break;
    EXPECT_LE(previous, key);
    previous = key;
  }
}

TEST(ParallelExtSort, FailingBackgroundSpillWriteSurfacesFromFinish) {
  auto device = NewMemoryBlockDevice(512);
  MemoryBudget budget(32);
  RunStore store(device.get(), &budget);
  WorkerPool pool(2);
  ParallelContext context(ParallelOptions{.threads = 2}, &pool);
  ExtSortOptions options;
  options.memory_blocks = 4;  // 3-block buffer: spills early and often
  options.parallel = &context;
  ExternalMergeSorter sorter(&store, options);
  NEX_ASSERT_OK(sorter.init_status());

  // Every run write fails. The first spill happens on a background worker;
  // its error must not vanish — either a later Add observes the sticky
  // status or Finish returns it.
  device->FailAfterOps(0, 1 << 20, BlockDevice::FailOps::kWrites);

  std::mt19937 rng(7);
  Status add_status;
  for (int i = 0; i < 5000 && add_status.ok(); ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "%06u",
                  static_cast<unsigned>(rng() % 1000000));
    add_status = sorter.Add(key, "payload");
  }
  Status finish_status = sorter.Finish();
  EXPECT_FALSE(add_status.ok() && finish_status.ok())
      << "a failed background spill write was silently dropped";
}

// ---------------------------------------------------------------------------
// End-to-end determinism properties

// Sort one fig5-style random document through NexSorter with the given
// parallel configuration, returning output bytes plus device I/O counters.
std::string RunNexSort(const std::string& xml, const OrderSpec& spec,
                       uint32_t threads, uint32_t prefetch_depth,
                       uint64_t cache_frames, IoStats* io,
                       ParallelStats* pstats, bool throttled = false) {
  SortEnvOptions env_options;
  env_options.block_size = 512;
  env_options.memory_blocks = 64;
  // Pin a small sort allowance so (a) serial and parallel runs share the
  // same run structure (the auto mode would halve it for the second
  // buffer) and (b) large subtrees really go external and spill runs.
  env_options.sort_memory_blocks = 4;
  env_options.parallel.threads = threads;
  env_options.parallel.prefetch_depth = prefetch_depth;
  if (cache_frames > 0) env_options.cache = {.frames = cache_frames,
                                             .readahead = 0};
  // A slept per-access latency makes the foreground block on device I/O,
  // which guarantees background threads (e.g. the run prefetcher) get
  // scheduled even on a single-core machine under load.
  if (throttled) {
    env_options.layers.push_back(DeviceLayer::Throttle(
        {.access_latency_us = 50.0, .throughput_mb_per_s = 4000.0}));
  }
  Env env(env_options);
  NexSortOptions options;
  options.order = spec;
  std::string out;
  {
    NexSorter sorter(env.get(), options);
    StringByteSource source(xml);
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (io != nullptr) *io = env.env->physical_device()->stats();
    if (pstats != nullptr) *pstats = sorter.parallel_stats();
  }
  // The sorter released everything it acquired; the env-owned cache keeps
  // its frames resident until the env itself is destroyed.
  EXPECT_EQ(env.budget()->used_blocks(), cache_frames);
  EXPECT_EQ(env.budget()->release_underflows(), 0u);
  return out;
}

// Totals and per-category counts must match; the sequential_* subsets and
// modeled_seconds legitimately depend on physical interleaving.
void ExpectSameLogicalIo(const IoStats& got, const IoStats& want,
                         const std::string& label) {
  EXPECT_EQ(got.reads.load(), want.reads.load()) << label;
  EXPECT_EQ(got.writes.load(), want.writes.load()) << label;
  for (int c = 0; c < kNumIoCategories; ++c) {
    EXPECT_EQ(got.category_reads[c].load(), want.category_reads[c].load())
        << label << " category " << c << " reads";
    EXPECT_EQ(got.category_writes[c].load(), want.category_writes[c].load())
        << label << " category " << c << " writes";
  }
}

TEST(ParallelDeterminism, NexSortThreadsMatchSerialOutputAndLogicalIo) {
  RandomTreeGenerator generator(/*height=*/6, /*max_fanout=*/6,
                                {.seed = 17, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  IoStats serial_io;
  std::string serial =
      RunNexSort(*xml, spec, 0, 0, 0, &serial_io, nullptr);
  ASSERT_FALSE(serial.empty());

  for (uint32_t threads : {1u, 2u, 4u}) {
    IoStats io;
    ParallelStats pstats;
    std::string out = RunNexSort(*xml, spec, threads, 0, 0, &io, &pstats);
    EXPECT_EQ(out, serial) << "threads=" << threads;
    ExpectSameLogicalIo(io, serial_io,
                        "threads=" + std::to_string(threads));
    // Double buffering engaged at least once on this workload.
    EXPECT_GT(pstats.async_spills + pstats.sync_spills, 0u);
  }
}

TEST(ParallelDeterminism, NexSortPrefetchingMatchesSerialOutput) {
  RandomTreeGenerator generator(/*height=*/6, /*max_fanout=*/6,
                                {.seed = 23, .element_bytes = 100});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  OrderSpec spec = OrderSpec::ByAttribute("id", /*numeric=*/true);

  std::string serial = RunNexSort(*xml, spec, 0, 0, 0, nullptr, nullptr);

  // Prefetching needs cache frames; compare against a cached serial run so
  // the only variable is the prefetcher. Outputs must match the uncached
  // serial run bit for bit either way.
  std::string cached =
      RunNexSort(*xml, spec, 0, 0, /*cache_frames=*/16, nullptr, nullptr);
  EXPECT_EQ(cached, serial);

  // The prefetcher issues from its own thread, and a CPU-bound merge can
  // Stop() it before the scheduler ever ran it — on a loaded single-core
  // machine an unthrottled attempt can legitimately report zero issued
  // blocks. Throttling makes the foreground sleep on every access so the
  // prefetcher always gets the core; output identity must hold on every
  // attempt, engagement only has to be observed once.
  uint64_t issued = 0;
  for (int attempt = 0; attempt < 5 && issued == 0; ++attempt) {
    ParallelStats pstats;
    std::string prefetched = RunNexSort(*xml, spec, /*threads=*/2,
                                        /*prefetch_depth=*/4,
                                        /*cache_frames=*/16, nullptr, &pstats,
                                        /*throttled=*/true);
    EXPECT_EQ(prefetched, serial);
    issued = pstats.prefetch_issued;
  }
  EXPECT_GT(issued, 0u);
}

TEST(ParallelDeterminism, KeyPathSortThreadsMatchSerialOutputAndLogicalIo) {
  RandomTreeGenerator generator(/*height=*/4, /*max_fanout=*/7,
                                {.seed = 31, .element_bytes = 50});
  auto xml = generator.GenerateString();
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();

  auto run = [&](uint32_t threads, IoStats* io) {
    SortEnvOptions env_options;
    env_options.block_size = 512;
    env_options.memory_blocks = 64;
    env_options.sort_memory_blocks = 8;
    env_options.parallel.threads = threads;
    Env env(env_options);
    KeyPathSortOptions options;
    options.order = OrderSpec::ByAttribute("id", /*numeric=*/true);
    KeyPathXmlSorter sorter(env.get(), options);
    StringByteSource source(*xml);
    std::string out;
    StringByteSink sink(&out);
    Status st = sorter.Sort(&source, &sink);
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (io != nullptr) *io = env.device()->stats();
    return out;
  };

  IoStats serial_io;
  std::string serial = run(0, &serial_io);
  ASSERT_FALSE(serial.empty());
  for (uint32_t threads : {1u, 2u, 4u}) {
    IoStats io;
    std::string out = run(threads, &io);
    EXPECT_EQ(out, serial) << "threads=" << threads;
    ExpectSameLogicalIo(io, serial_io,
                        "keypath threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace testing
}  // namespace nexsort
