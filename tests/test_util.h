// Shared helpers for the test suite.
#pragma once

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/dom_sort.h"
#include "core/keypath_xml_sort.h"
#include "core/nexsort.h"
#include "env/sort_env.h"
#include "extmem/block_device.h"
#include "extmem/memory_budget.h"

namespace nexsort {
namespace testing {

#define NEX_ASSERT_OK(expr)                                     \
  do {                                                          \
    ::nexsort::Status _st = (expr);                             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define NEX_EXPECT_OK(expr)                                     \
  do {                                                          \
    ::nexsort::Status _st = (expr);                             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

/// A small-block SortEnv (in-RAM device + budget), the standard fixture.
/// Accessors mirror the old (device, budget) pair for components below the
/// env layer; sorters take `get()`.
struct Env {
  std::unique_ptr<SortEnv> env;

  explicit Env(size_t block_size = 1024, uint64_t memory_blocks = 32) {
    SortEnvOptions options;
    options.block_size = block_size;
    options.memory_blocks = memory_blocks;
    Init(std::move(options));
  }

  explicit Env(SortEnvOptions options) { Init(std::move(options)); }

  SortEnv* get() const { return env.get(); }
  BlockDevice* device() const { return env->device(); }
  MemoryBudget* budget() const { return env->budget(); }

 private:
  void Init(SortEnvOptions options) {
    auto result = SortEnv::Create(std::move(options));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    env = std::move(result).value();
  }
};

/// NEXSORT an XML string end to end; fails the test on error.
inline std::string NexSortString(std::string_view xml, NexSortOptions options,
                                 size_t block_size = 1024,
                                 uint64_t memory_blocks = 32,
                                 NexSortStats* stats = nullptr) {
  Env env(block_size, memory_blocks);
  NexSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status st = sorter.Sort(&source, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (stats != nullptr) *stats = sorter.stats();
  return out;
}

/// Key-path merge sort an XML string end to end.
inline std::string KeyPathSortString(std::string_view xml,
                                     KeyPathSortOptions options,
                                     size_t block_size = 1024,
                                     uint64_t memory_blocks = 32) {
  Env env(block_size, memory_blocks);
  KeyPathXmlSorter sorter(env.get(), std::move(options));
  StringByteSource source(xml);
  std::string out;
  StringByteSink sink(&out);
  Status st = sorter.Sort(&source, &sink);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

/// The in-memory recursive sort oracle.
inline std::string OracleSort(std::string_view xml, const OrderSpec& spec,
                              int depth_limit = 0) {
  auto result = SortXmlStringInMemory(xml, spec, depth_limit);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::string();
}

}  // namespace testing
}  // namespace nexsort
